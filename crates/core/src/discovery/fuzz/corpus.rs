//! The resumable on-disk corpus (schema v6) and the synthesized attack
//! registry it exports.
//!
//! A [`Corpus`] records everything a fuzzing run has established — how
//! many candidates are classified, every divergence with its explanation,
//! every rediscovered catalog attack, every novel minimized leaker, and
//! the full set of raw fingerprints already seen — so a later run with
//! the same seed resumes *after* the classified prefix instead of redoing
//! it, with bit-identical results to an uninterrupted run.
//!
//! Programs are serialized as assembler text ([`isa::asm::disassemble`])
//! and re-parsed with the workspace's own assembler, so the corpus stays
//! readable in a diff and needs no bespoke instruction encoding. The
//! JSON itself follows the campaign writers' conventions and is read
//! back by [`crate::jsonio`].

use super::gen::{Combo, Mutation, Scenario};
use crate::campaign::{json_str, push_json_list};
use crate::jsonio::{self, Json};
use attacks::{Attack, AttackInfo, AttackOutcome};
use isa::asm;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use tsg::SecurityAnalysis;
use uarch::Machine;

/// Corpus / synthesized-registry schema version. Bumped past the
/// campaign writers' v5 because the fuzzing artifacts introduce new
/// document kinds.
pub const FUZZ_SCHEMA_VERSION: u64 = 6;

/// Corpus file name inside a `--corpus` directory.
pub const CORPUS_FILE: &str = "fuzz-corpus.json";

/// A corpus read/write problem.
#[derive(Debug)]
pub enum CorpusError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file is not valid JSON.
    Json(jsonio::JsonError),
    /// The document parsed but violates the schema.
    Schema(String),
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "corpus io error: {e}"),
            CorpusError::Json(e) => write!(f, "corpus parse error: {e}"),
            CorpusError::Schema(m) => write!(f, "corpus schema error: {m}"),
        }
    }
}

impl CorpusError {
    /// Whether this error means "a corpus existed but was cut short on
    /// disk" — the typed [`Truncated`](jsonio::JsonErrorKind::Truncated)
    /// signature of a writer killed mid-save. Recoverable: the fuzzer can
    /// discard the damaged file and re-classify from the last good budget
    /// instead of failing with a generic parse error.
    #[must_use]
    pub fn is_recoverable(&self) -> bool {
        matches!(self, CorpusError::Json(e) if e.is_truncated())
    }
}

impl std::error::Error for CorpusError {}

impl From<io::Error> for CorpusError {
    fn from(e: io::Error) -> Self {
        CorpusError::Io(e)
    }
}

impl From<jsonio::JsonError> for CorpusError {
    fn from(e: jsonio::JsonError) -> Self {
        CorpusError::Json(e)
    }
}

/// One Theorem-1-vs-simulation disagreement, with its explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivergenceRecord {
    /// Candidate index under the corpus seed.
    pub index: u64,
    /// The candidate's design-space point ([`Combo::label`]).
    pub combo: String,
    /// The candidate's mutation tags.
    pub mutations: Vec<Mutation>,
    /// The classified bucket ([`super::Agreement::tag`]).
    pub agreement: String,
}

/// A candidate whose fingerprint matched a catalog attack's lifted shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rediscovery {
    /// The catalog attack's canonical name.
    pub name: String,
    /// Candidate index that rediscovered it.
    pub index: u64,
    /// The shared fingerprint.
    pub fingerprint: u64,
}

/// A novel leaking scenario: leaks under both oracles, fingerprint seen
/// in neither the catalog nor earlier in this corpus, minimized to
/// 1-minimality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Candidate index that produced it.
    pub index: u64,
    /// Design-space point ([`Combo::label`]).
    pub combo: String,
    /// Mutation tags of the originating candidate.
    pub mutations: Vec<Mutation>,
    /// Fingerprint of the as-generated (raw) lifted graph.
    pub raw_fingerprint: u64,
    /// Fingerprint after minimization.
    pub minimized_fingerprint: u64,
    /// The minimized program, as assembler text.
    pub program: String,
    /// `access_pc` of the minimized scenario.
    pub access_pc: u64,
    /// `gadget_pc` of the minimized scenario.
    pub gadget_pc: u64,
    /// `benign_pc` of the minimized scenario.
    pub benign_pc: u64,
    /// Instructions the shrinker deleted.
    pub removed: u64,
}

impl Finding {
    /// Rebuilds the runnable minimized scenario.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Schema`] if the stored program or combo label does
    /// not parse — a hand-edited or corrupt corpus.
    pub fn scenario(&self) -> Result<Scenario, CorpusError> {
        let combo = Combo::from_label(&self.combo)
            .ok_or_else(|| CorpusError::Schema(format!("bad combo label {:?}", self.combo)))?;
        let program = asm::assemble(&self.program)
            .map_err(|e| CorpusError::Schema(format!("bad finding program: {e}")))?;
        Ok(Scenario {
            combo,
            mutations: self.mutations.clone(),
            program,
            access_pc: self.access_pc as usize,
            gadget_pc: self.gadget_pc as usize,
            benign_pc: self.benign_pc as usize,
        })
    }

    /// The finding's stable registry name, derived from its minimized
    /// fingerprint.
    #[must_use]
    pub fn name(&self) -> String {
        format!("synth-{:016x}", self.minimized_fingerprint)
    }
}

/// The resumable fuzzing corpus: classification counters plus every
/// first-class artifact the run produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Corpus {
    /// The seed the whole corpus is derived from.
    pub seed: u64,
    /// Whether findings were minimized (resume requires a match).
    pub minimize: bool,
    /// Candidates classified so far: resume starts at this index.
    pub classified: u64,
    /// Candidates where both oracles said "leak".
    pub agree_leak: u64,
    /// Candidates where both oracles said "safe".
    pub agree_safe: u64,
    /// Every divergence, in candidate order.
    pub divergences: Vec<DivergenceRecord>,
    /// Every rediscovered catalog attack, in candidate order.
    pub rediscovered: Vec<Rediscovery>,
    /// Every distinct raw fingerprint seen, in first-seen order.
    pub raw_seen: Vec<u64>,
    /// Novel minimized leakers, in discovery order.
    pub findings: Vec<Finding>,
}

impl Corpus {
    /// An empty corpus for `seed`.
    #[must_use]
    pub fn new(seed: u64, minimize: bool) -> Self {
        Corpus {
            seed,
            minimize,
            ..Corpus::default()
        }
    }

    /// Unexplained divergences — the suite asserts this is empty.
    #[must_use]
    pub fn unexplained(&self) -> Vec<&DivergenceRecord> {
        self.divergences
            .iter()
            .filter(|d| d.agreement.ends_with("/unexplained"))
            .collect()
    }

    /// Serializes to the v6 `fuzz-corpus` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\n  \"version\": {FUZZ_SCHEMA_VERSION},\n  \"kind\": \"fuzz-corpus\",\n  \
             \"seed\": {},\n  \"minimize\": {},\n  \"classified\": {},\n  \
             \"agree_leak\": {},\n  \"agree_safe\": {},",
            self.seed, self.minimize, self.classified, self.agree_leak, self.agree_safe
        );
        out.push_str("\n  \"divergences\": [");
        for (i, d) in self.divergences.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"index\": {}, \"combo\": {}, \"mutations\": [",
                d.index,
                json_str(&d.combo)
            );
            push_json_list(&mut out, d.mutations.iter().map(|m| m.tag()));
            let _ = write!(out, "], \"agreement\": {}}}", json_str(&d.agreement));
        }
        out.push_str("\n  ],\n  \"rediscovered\": [");
        for (i, r) in self.rediscovered.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"name\": {}, \"index\": {}, \"fingerprint\": {}}}",
                json_str(&r.name),
                r.index,
                r.fingerprint
            );
        }
        out.push_str("\n  ],\n  \"raw_seen\": [");
        for (i, fp) in self.raw_seen.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{fp}");
        }
        out.push_str("],\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"index\": {}, \"combo\": {}, \"mutations\": [",
                f.index,
                json_str(&f.combo)
            );
            push_json_list(&mut out, f.mutations.iter().map(|m| m.tag()));
            let _ = write!(
                out,
                "], \"raw_fingerprint\": {}, \"minimized_fingerprint\": {}, \
                 \"program\": {}, \"access_pc\": {}, \"gadget_pc\": {}, \
                 \"benign_pc\": {}, \"removed\": {}}}",
                f.raw_fingerprint,
                f.minimized_fingerprint,
                json_str(&f.program),
                f.access_pc,
                f.gadget_pc,
                f.benign_pc,
                f.removed
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a v6 `fuzz-corpus` document.
    ///
    /// # Errors
    ///
    /// [`CorpusError`] on JSON problems or schema violations (wrong
    /// version/kind, missing fields, bad tags).
    pub fn from_json(text: &str) -> Result<Self, CorpusError> {
        let doc = jsonio::parse(text)?;
        expect_header(&doc, "fuzz-corpus")?;
        let mut corpus = Corpus {
            seed: req_u64(&doc, "seed")?,
            minimize: req_bool(&doc, "minimize")?,
            classified: req_u64(&doc, "classified")?,
            agree_leak: req_u64(&doc, "agree_leak")?,
            agree_safe: req_u64(&doc, "agree_safe")?,
            ..Corpus::default()
        };
        for d in req_arr(&doc, "divergences")? {
            corpus.divergences.push(DivergenceRecord {
                index: req_u64(d, "index")?,
                combo: req_str(d, "combo")?,
                mutations: mutations_of(d)?,
                agreement: req_str(d, "agreement")?,
            });
        }
        for r in req_arr(&doc, "rediscovered")? {
            corpus.rediscovered.push(Rediscovery {
                name: req_str(r, "name")?,
                index: req_u64(r, "index")?,
                fingerprint: req_u64(r, "fingerprint")?,
            });
        }
        for fp in req_arr(&doc, "raw_seen")? {
            corpus.raw_seen.push(
                fp.as_u64().ok_or_else(|| {
                    CorpusError::Schema("raw_seen entries must be numbers".into())
                })?,
            );
        }
        for f in req_arr(&doc, "findings")? {
            corpus.findings.push(Finding {
                index: req_u64(f, "index")?,
                combo: req_str(f, "combo")?,
                mutations: mutations_of(f)?,
                raw_fingerprint: req_u64(f, "raw_fingerprint")?,
                minimized_fingerprint: req_u64(f, "minimized_fingerprint")?,
                program: req_str(f, "program")?,
                access_pc: req_u64(f, "access_pc")?,
                gadget_pc: req_u64(f, "gadget_pc")?,
                benign_pc: req_u64(f, "benign_pc")?,
                removed: req_u64(f, "removed")?,
            });
        }
        Ok(corpus)
    }

    /// The corpus file path inside `dir`.
    #[must_use]
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(CORPUS_FILE)
    }

    /// Writes the corpus into `dir` (created if missing), atomically via
    /// a rename so a killed run never leaves a half-written corpus.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Io`] on filesystem failure.
    pub fn save(&self, dir: &Path) -> Result<(), CorpusError> {
        fs::create_dir_all(dir)?;
        crate::fault::write_atomic(Self::path_in(dir), &self.to_json())?;
        Ok(())
    }

    /// Loads the corpus from `dir`; `Ok(None)` when no corpus exists yet.
    ///
    /// # Errors
    ///
    /// [`CorpusError`] on filesystem or parse failure.
    pub fn load(dir: &Path) -> Result<Option<Self>, CorpusError> {
        let path = Self::path_in(dir);
        if !path.exists() {
            return Ok(None);
        }
        Ok(Some(Self::from_json(&fs::read_to_string(path)?)?))
    }

    /// Exports the findings as a versioned [`SynthesizedRegistry`].
    #[must_use]
    pub fn registry(&self) -> SynthesizedRegistry {
        SynthesizedRegistry {
            findings: self.findings.clone(),
        }
    }
}

/// The fuzzer-grown attack catalog: novel minimized leakers packaged as
/// first-class [`Attack`]s, pluggable into a campaign's attack axis next
/// to the hand-built registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SynthesizedRegistry {
    /// The findings, in discovery order.
    pub findings: Vec<Finding>,
}

impl SynthesizedRegistry {
    /// Serializes to the v6 `synthesized-registry` document.
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\n  \"version\": {FUZZ_SCHEMA_VERSION},\n  \
             \"kind\": \"synthesized-registry\",\n  \"findings\": ["
        );
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"index\": {}, \"combo\": {}, \"mutations\": [",
                f.index,
                json_str(&f.combo)
            );
            push_json_list(&mut out, f.mutations.iter().map(|m| m.tag()));
            let _ = write!(
                out,
                "], \"raw_fingerprint\": {}, \"minimized_fingerprint\": {}, \
                 \"program\": {}, \"access_pc\": {}, \"gadget_pc\": {}, \
                 \"benign_pc\": {}, \"removed\": {}}}",
                f.raw_fingerprint,
                f.minimized_fingerprint,
                json_str(&f.program),
                f.access_pc,
                f.gadget_pc,
                f.benign_pc,
                f.removed
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a v6 `synthesized-registry` document.
    ///
    /// # Errors
    ///
    /// [`CorpusError`] on JSON problems or schema violations.
    pub fn from_json(text: &str) -> Result<Self, CorpusError> {
        let doc = jsonio::parse(text)?;
        expect_header(&doc, "synthesized-registry")?;
        let mut reg = SynthesizedRegistry::default();
        for f in req_arr(&doc, "findings")? {
            reg.findings.push(Finding {
                index: req_u64(f, "index")?,
                combo: req_str(f, "combo")?,
                mutations: mutations_of(f)?,
                raw_fingerprint: req_u64(f, "raw_fingerprint")?,
                minimized_fingerprint: req_u64(f, "minimized_fingerprint")?,
                program: req_str(f, "program")?,
                access_pc: req_u64(f, "access_pc")?,
                gadget_pc: req_u64(f, "gadget_pc")?,
                benign_pc: req_u64(f, "benign_pc")?,
                removed: req_u64(f, "removed")?,
            });
        }
        Ok(reg)
    }

    /// Materializes the findings as `'static` [`Attack`]s for a campaign
    /// attack axis (`CampaignSpec::attacks`). Each call **leaks** the
    /// scenarios (the campaign API requires `&'static dyn Attack`); call
    /// once per process, not per iteration.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Schema`] if a stored finding no longer parses.
    pub fn attacks(&self) -> Result<Vec<&'static dyn Attack>, CorpusError> {
        self.findings
            .iter()
            .map(|f| {
                let named = NamedScenario {
                    name: Box::leak(f.name().into_boxed_str()),
                    scenario: f.scenario()?,
                };
                Ok(Box::leak(Box::new(named)) as &'static dyn Attack)
            })
            .collect()
    }
}

/// A synthesized scenario with its registry name — the `'static` attack
/// the campaign axis holds.
#[derive(Debug)]
struct NamedScenario {
    name: &'static str,
    scenario: Scenario,
}

impl Attack for NamedScenario {
    fn info(&self) -> AttackInfo {
        AttackInfo {
            name: self.name,
            ..self.scenario.info()
        }
    }

    fn graph(&self) -> SecurityAnalysis {
        self.scenario.graph()
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, attacks::AttackError> {
        self.scenario.run_in(m)
    }
}

fn expect_header(doc: &Json, kind: &str) -> Result<(), CorpusError> {
    match doc.get("version").and_then(Json::as_u64) {
        Some(FUZZ_SCHEMA_VERSION) => {}
        Some(v) => {
            return Err(CorpusError::Schema(format!(
                "unsupported version {v} (expected {FUZZ_SCHEMA_VERSION})"
            )))
        }
        None => return Err(CorpusError::Schema("missing version".into())),
    }
    match doc.get("kind").and_then(Json::as_str) {
        Some(k) if k == kind => Ok(()),
        Some(k) => Err(CorpusError::Schema(format!(
            "kind {k:?} is not a {kind:?} document"
        ))),
        None => Err(CorpusError::Schema("missing kind".into())),
    }
}

fn req_u64(obj: &Json, key: &str) -> Result<u64, CorpusError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| CorpusError::Schema(format!("missing number {key:?}")))
}

fn req_bool(obj: &Json, key: &str) -> Result<bool, CorpusError> {
    obj.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| CorpusError::Schema(format!("missing bool {key:?}")))
}

fn req_str(obj: &Json, key: &str) -> Result<String, CorpusError> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| CorpusError::Schema(format!("missing string {key:?}")))
}

fn req_arr<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], CorpusError> {
    obj.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| CorpusError::Schema(format!("missing array {key:?}")))
}

fn mutations_of(obj: &Json) -> Result<Vec<Mutation>, CorpusError> {
    req_arr(obj, "mutations")?
        .iter()
        .map(|m| {
            m.as_str()
                .and_then(Mutation::from_tag)
                .ok_or_else(|| CorpusError::Schema(format!("bad mutation tag {m:?}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::gen::{ChannelDim, DelayDim, SourceDim};
    use super::*;

    fn sample_corpus() -> Corpus {
        let combo = Combo {
            source: SourceDim::KernelMemory,
            delay: DelayDim::ConditionalBranch,
            channel: ChannelDim::FlushReload,
        };
        let s = Scenario::template(combo);
        let mut c = Corpus::new(42, true);
        c.classified = 100;
        c.agree_leak = 60;
        c.agree_safe = 30;
        c.divergences.push(DivergenceRecord {
            index: 7,
            combo: combo.label(),
            mutations: vec![Mutation::DeadValue],
            agreement: "missed-leak/dead-value".into(),
        });
        c.rediscovered.push(Rediscovery {
            name: attacks::names::SPECTRE_V1.into(),
            index: 3,
            fingerprint: 0xdead,
        });
        c.raw_seen = vec![1, 2, 3];
        c.findings.push(Finding {
            index: 11,
            combo: combo.label(),
            mutations: vec![Mutation::Launder],
            raw_fingerprint: 5,
            minimized_fingerprint: 6,
            program: asm::disassemble(&s.program),
            access_pc: s.access_pc as u64,
            gadget_pc: s.gadget_pc as u64,
            benign_pc: s.benign_pc as u64,
            removed: 2,
        });
        c
    }

    #[test]
    fn corpus_round_trips_through_json() {
        let c = sample_corpus();
        let parsed = Corpus::from_json(&c.to_json()).unwrap();
        assert_eq!(parsed, c);
        // And the serialization itself is a fixed point.
        assert_eq!(parsed.to_json(), c.to_json());
    }

    #[test]
    fn finding_scenarios_rebuild_runnable_programs() {
        let c = sample_corpus();
        let s = c.findings[0].scenario().unwrap();
        assert_eq!(s.program.label("out"), Some(s.program.len() - 1));
        assert_eq!(s.access_pc, c.findings[0].access_pc as usize);
    }

    #[test]
    fn registry_round_trips_and_materializes_attacks() {
        let reg = sample_corpus().registry();
        let parsed = SynthesizedRegistry::from_json(&reg.to_json()).unwrap();
        assert_eq!(parsed, reg);
        let attacks = parsed.attacks().unwrap();
        assert_eq!(attacks.len(), 1);
        assert_eq!(attacks[0].info().name, reg.findings[0].name());
        // The lifted graph is non-trivial.
        assert!(attacks[0].graph().graph().node_count() > 0);
    }

    #[test]
    fn save_and_load_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("fuzz-corpus-test-{}", std::process::id()));
        let c = sample_corpus();
        c.save(&dir).unwrap();
        let loaded = Corpus::load(&dir).unwrap().unwrap();
        assert_eq!(loaded, c);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_version_and_kind_are_schema_errors() {
        let good = sample_corpus().to_json();
        let wrong_version = good.replacen("\"version\": 6", "\"version\": 5", 1);
        assert!(matches!(
            Corpus::from_json(&wrong_version),
            Err(CorpusError::Schema(_))
        ));
        let wrong_kind = good.replacen("fuzz-corpus", "campaign-matrix", 1);
        assert!(matches!(
            Corpus::from_json(&wrong_kind),
            Err(CorpusError::Schema(_))
        ));
        assert!(matches!(
            SynthesizedRegistry::from_json(&good),
            Err(CorpusError::Schema(_))
        ));
    }

    #[test]
    fn unexplained_filter_finds_only_unexplained() {
        let mut c = sample_corpus();
        assert!(c.unexplained().is_empty());
        c.divergences.push(DivergenceRecord {
            index: 9,
            combo: c.divergences[0].combo.clone(),
            mutations: vec![],
            agreement: "false-sense/unexplained".into(),
        });
        assert_eq!(c.unexplained().len(), 1);
    }
}
