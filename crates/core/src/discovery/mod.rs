//! §V-A: finding **new attacks** by composing the three dimensions.
//!
//! The paper's takeaway: *"any new combination of these three dimensions of
//! an attack gives a new attack"* — (1) where the secret comes from,
//! (2) which hardware feature delays the authorization, and (3) which
//! covert channel carries the secret out. This module enumerates the design
//! space, generates the attack graph for any point in it, and identifies
//! which points correspond to the published variants (everything else is a
//! candidate *new* attack).

pub mod fuzz;

use std::fmt;
use tsg::{EdgeKind, NodeKind, SecretSource, SecurityAnalysis};

/// Dimension 1: the source of the secret.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SecretSourceDim {
    /// Architectural memory reached out of bounds / stale (Spectre).
    ArchitecturalMemory,
    /// Privileged memory (Meltdown).
    KernelMemory,
    /// The L1 data cache under a terminal fault (Foreshadow).
    L1Cache,
    /// The line fill buffer (RIDL/ZombieLoad/CacheOut).
    LineFillBuffer,
    /// The store buffer (Fallout/LVI).
    StoreBuffer,
    /// A load port (RIDL).
    LoadPort,
    /// A privileged special register (Spectre v3a).
    SpecialRegister,
    /// Stale FPU state (Lazy FP).
    FpuState,
}

impl SecretSourceDim {
    /// All source values.
    #[must_use]
    pub fn all() -> [SecretSourceDim; 8] {
        [
            SecretSourceDim::ArchitecturalMemory,
            SecretSourceDim::KernelMemory,
            SecretSourceDim::L1Cache,
            SecretSourceDim::LineFillBuffer,
            SecretSourceDim::StoreBuffer,
            SecretSourceDim::LoadPort,
            SecretSourceDim::SpecialRegister,
            SecretSourceDim::FpuState,
        ]
    }

    fn to_tsg(self) -> SecretSource {
        match self {
            SecretSourceDim::ArchitecturalMemory => SecretSource::ArchitecturalMemory,
            SecretSourceDim::KernelMemory => SecretSource::Memory,
            SecretSourceDim::L1Cache => SecretSource::Cache,
            SecretSourceDim::LineFillBuffer => SecretSource::LineFillBuffer,
            SecretSourceDim::StoreBuffer => SecretSource::StoreBuffer,
            SecretSourceDim::LoadPort => SecretSource::LoadPort,
            SecretSourceDim::SpecialRegister => SecretSource::SpecialRegister,
            SecretSourceDim::FpuState => SecretSource::Fpu,
        }
    }
}

impl fmt::Display for SecretSourceDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SecretSourceDim::ArchitecturalMemory => "architectural memory",
            SecretSourceDim::KernelMemory => "kernel memory",
            SecretSourceDim::L1Cache => "L1 cache",
            SecretSourceDim::LineFillBuffer => "line fill buffer",
            SecretSourceDim::StoreBuffer => "store buffer",
            SecretSourceDim::LoadPort => "load port",
            SecretSourceDim::SpecialRegister => "special register",
            SecretSourceDim::FpuState => "FPU state",
        })
    }
}

/// Dimension 2: the hardware feature whose delay opens the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DelayMechanism {
    /// Conditional branch resolution (PHT prediction).
    ConditionalBranch,
    /// Indirect branch target computation (BTB prediction).
    IndirectBranch,
    /// Return target resolution (RSB prediction).
    ReturnAddress,
    /// Store-load address disambiguation.
    Disambiguation,
    /// A delayed exception (privilege/present/reserved check).
    DelayedException,
    /// Transactional-abort completion (TSX).
    TransactionAbort,
}

impl DelayMechanism {
    /// All delay mechanisms.
    #[must_use]
    pub fn all() -> [DelayMechanism; 6] {
        [
            DelayMechanism::ConditionalBranch,
            DelayMechanism::IndirectBranch,
            DelayMechanism::ReturnAddress,
            DelayMechanism::Disambiguation,
            DelayMechanism::DelayedException,
            DelayMechanism::TransactionAbort,
        ]
    }

    /// Whether the authorization lives inside the accessing instruction
    /// (Meltdown-type) or in a prior instruction (Spectre-type).
    #[must_use]
    pub fn is_intra_instruction(self) -> bool {
        matches!(
            self,
            DelayMechanism::DelayedException | DelayMechanism::TransactionAbort
        )
    }

    fn authorization_label(self) -> &'static str {
        match self {
            DelayMechanism::ConditionalBranch => "Branch resolution",
            DelayMechanism::IndirectBranch => "Indirect target resolution",
            DelayMechanism::ReturnAddress => "Return target resolution",
            DelayMechanism::Disambiguation => "Memory address disambiguation",
            DelayMechanism::DelayedException => "Permission check",
            DelayMechanism::TransactionAbort => "Transaction abort completion",
        }
    }
}

impl fmt::Display for DelayMechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.authorization_label())
    }
}

/// Dimension 3: the covert channel carrying the secret out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Channel {
    /// Flush+Reload (hit + access).
    FlushReload,
    /// Prime+Probe (miss + access).
    PrimeProbe,
    /// Evict+Time (miss + operation).
    EvictTime,
    /// Cache collision (hit + operation).
    Collision,
}

impl Channel {
    /// All channels.
    #[must_use]
    pub fn all() -> [Channel; 4] {
        [
            Channel::FlushReload,
            Channel::PrimeProbe,
            Channel::EvictTime,
            Channel::Collision,
        ]
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Channel::FlushReload => "Flush+Reload",
            Channel::PrimeProbe => "Prime+Probe",
            Channel::EvictTime => "Evict+Time",
            Channel::Collision => "cache collision",
        })
    }
}

/// One point in the attack design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AttackPoint {
    /// Where the secret comes from.
    pub source: SecretSourceDim,
    /// What delays the authorization.
    pub delay: DelayMechanism,
    /// How the secret leaves.
    pub channel: Channel,
}

impl AttackPoint {
    /// The published variant occupying this point, if any — everything else
    /// is a candidate *new* attack (with its default Flush+Reload channel;
    /// channel substitutions of known variants are also "new" in the
    /// paper's sense but carry the base name).
    #[must_use]
    pub fn known_variant(&self) -> Option<&'static str> {
        use Channel::FlushReload as FR;
        use DelayMechanism as D;
        use SecretSourceDim as S;
        if self.channel != FR {
            return None;
        }
        match (self.source, self.delay) {
            (S::ArchitecturalMemory, D::ConditionalBranch) => Some("Spectre v1/v1.1/v1.2"),
            (S::ArchitecturalMemory, D::IndirectBranch) => Some("Spectre v2"),
            (S::ArchitecturalMemory, D::ReturnAddress) => Some("Spectre-RSB"),
            (S::ArchitecturalMemory, D::Disambiguation) => Some("Spectre v4"),
            (S::KernelMemory, D::DelayedException) => Some("Meltdown"),
            (S::L1Cache, D::DelayedException) => Some("Foreshadow / Foreshadow-NG"),
            (S::LineFillBuffer, D::DelayedException) => Some("RIDL / ZombieLoad / LVI"),
            (S::StoreBuffer, D::DelayedException) => Some("Fallout / LVI"),
            (S::LoadPort, D::DelayedException) => Some("RIDL"),
            (S::SpecialRegister, D::DelayedException) => Some("Spectre v3a"),
            (S::FpuState, D::DelayedException) => Some("Lazy FP"),
            (S::L1Cache, D::TransactionAbort) => Some("TAA"),
            (S::LineFillBuffer, D::TransactionAbort) => Some("CacheOut"),
            _ => None,
        }
    }

    /// Generates the attack graph for this point: the generic
    /// setup→authorization/access race→use→send→receive shape, with the
    /// access node typed by the source dimension and the authorization node
    /// named after the delay mechanism.
    #[must_use]
    pub fn graph(&self) -> SecurityAnalysis {
        let mut sa = SecurityAnalysis::new();
        let g = sa.graph_mut();
        let setup = g.add_node(
            format!("Establish {} channel", self.channel),
            NodeKind::Setup,
        );
        let trigger = g.add_node(
            format!("Speculation trigger ({})", self.delay),
            NodeKind::Compute,
        );
        let auth = g.add_node(self.delay.authorization_label(), NodeKind::Authorization);
        let access = g.add_node(
            format!("Read secret from {}", self.source),
            NodeKind::SecretAccess(self.source.to_tsg()),
        );
        let use_n = g.add_node("Transform secret", NodeKind::UseSecret);
        let send = g.add_node(format!("Send via {}", self.channel), NodeKind::Send);
        let squash = g.add_node("Squash or commit", NodeKind::Resolution);
        let recv = g.add_node(format!("Receive via {}", self.channel), NodeKind::Receive);
        for (u, v, k) in [
            (setup, trigger, EdgeKind::Program),
            (trigger, auth, EdgeKind::Data),
            (trigger, access, EdgeKind::Data),
            (access, use_n, EdgeKind::Data),
            (use_n, send, EdgeKind::Address),
            (auth, squash, EdgeKind::Data),
            (squash, recv, EdgeKind::Program),
        ] {
            g.add_edge(u, v, k).expect("template is acyclic");
        }
        sa.require(auth, access).expect("nodes exist");
        sa.require(auth, use_n).expect("nodes exist");
        sa.require(auth, send).expect("nodes exist");
        sa
    }
}

impl fmt::Display for AttackPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / {} / {}", self.source, self.delay, self.channel)
    }
}

/// Enumerates the full design space (8 × 6 × 4 = 192 points).
#[must_use]
pub fn design_space() -> Vec<AttackPoint> {
    let mut v = Vec::new();
    for source in SecretSourceDim::all() {
        for delay in DelayMechanism::all() {
            for channel in Channel::all() {
                v.push(AttackPoint {
                    source,
                    delay,
                    channel,
                });
            }
        }
    }
    v
}

/// The points not occupied by a published variant: candidate new attacks.
#[must_use]
pub fn novel_points() -> Vec<AttackPoint> {
    design_space()
        .into_iter()
        .filter(|p| p.known_variant().is_none())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_has_192_points() {
        assert_eq!(design_space().len(), 8 * 6 * 4);
    }

    #[test]
    fn known_variants_are_marked() {
        let known: Vec<AttackPoint> = design_space()
            .into_iter()
            .filter(|p| p.known_variant().is_some())
            .collect();
        assert_eq!(known.len(), 13, "13 occupied Flush+Reload points");
        assert!(novel_points().len() == 192 - 13);
    }

    #[test]
    fn every_point_graph_has_the_race() {
        for p in design_space() {
            let sa = p.graph();
            let v = sa.vulnerabilities().unwrap();
            assert_eq!(v.len(), 3, "point {p} must race");
        }
    }

    #[test]
    fn every_point_graph_is_securable() {
        for p in design_space().into_iter().take(24) {
            let mut sa = p.graph();
            sa.patch_all().unwrap();
            assert!(sa.is_secure().unwrap());
        }
    }

    #[test]
    fn intra_instruction_classification() {
        assert!(DelayMechanism::DelayedException.is_intra_instruction());
        assert!(DelayMechanism::TransactionAbort.is_intra_instruction());
        assert!(!DelayMechanism::ConditionalBranch.is_intra_instruction());
    }

    #[test]
    fn display_is_informative() {
        let p = AttackPoint {
            source: SecretSourceDim::FpuState,
            delay: DelayMechanism::DelayedException,
            channel: Channel::PrimeProbe,
        };
        let s = p.to_string();
        assert!(s.contains("FPU"));
        assert!(s.contains("Prime+Probe"));
        assert!(p.known_variant().is_none(), "channel substitution = new");
    }
}
