//! Campaign-as-a-service: the serving layer over the shard/part/merge
//! pipeline.
//!
//! The campaign engine answers *batch* questions — run a whole
//! attack × stack × config cube, save the matrix. This module answers
//! *interactive* ones:
//!
//! - [`VerdictStore`] ingests saved [`CampaignMatrix`]/[`CampaignPart`]
//!   artifacts into a memoized index keyed by the same content
//!   fingerprints the incremental runner uses, and answers point queries
//!   ("is config X safe under stack Y against attack Z?") at memory
//!   speed on hits. A miss falls back to **simulate-on-miss** on a warm
//!   [`RunnerPool`] machine, with **single-flight dedup**: N concurrent
//!   misses for one cell run exactly one simulation and all callers
//!   observe the identical verdict.
//! - [`Scheduler`] decomposes a [`CampaignSpec`] into fine-grained chunk
//!   ranges served to work-stealing workers, streams each completed
//!   chunk into a store, **checkpoints** every chunk to disk as a
//!   `campaign-checkpoint` document, and resumes a killed run without
//!   redoing completed cells — the merged result stays bit-identical to
//!   a single-shot [`CampaignMatrix::run`].
//!
//! Verdicts computed on the miss path use exactly the campaign runner's
//! recipe (graph verdict from a [`defenses::PatchSession`], machine
//! verdict from [`defenses::verify_stack_warm`]), so a simulated answer
//! can never disagree with an ingested one.

use crate::campaign::{
    baseline_fingerprint, cell_fingerprint, config_digest, BaselineCell, CampaignMatrix,
    CampaignPart, CampaignSpec, MatrixCell, MergeError,
};
use attacks::{Attack, AttackError, RunnerPool};
use defenses::{DefenseStack, Verdict};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread;
use uarch::UarchConfig;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a serve-layer operation failed.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ServeError {
    /// A simulation failed (miss path or scheduler chunk). Shared so
    /// every caller coalesced onto one failed flight sees the same error.
    Attack(Arc<AttackError>),
    /// Reading or writing a checkpoint file failed.
    Io(Arc<std::io::Error>),
    /// A checkpoint file loaded cleanly but belongs to a different
    /// campaign: its spec fingerprint or shard geometry does not match
    /// the spec being scheduled. Resuming it would corrupt the matrix,
    /// so it is a hard error rather than a silent re-run.
    CheckpointMismatch {
        /// Chunk index of the offending file.
        index: usize,
        /// Fingerprint of the spec being scheduled.
        expected: u64,
        /// Fingerprint the checkpoint declares.
        found: u64,
    },
    /// The completed chunks failed to merge — an internal invariant
    /// violation (the scheduler constructs chunks that tile the cube).
    Merge(Arc<MergeError>),
}

impl From<AttackError> for ServeError {
    fn from(e: AttackError) -> Self {
        ServeError::Attack(Arc::new(e))
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(Arc::new(e))
    }
}

impl From<MergeError> for ServeError {
    fn from(e: MergeError) -> Self {
        ServeError::Merge(Arc::new(e))
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Attack(e) => write!(f, "simulation failed: {e}"),
            ServeError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            ServeError::CheckpointMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "checkpoint chunk {index} belongs to a different campaign \
                 (spec fingerprint {found:#018x}, expected {expected:#018x}); \
                 point --checkpoint at an empty or matching directory"
            ),
            ServeError::Merge(e) => write!(f, "chunk merge failed: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Attack(e) => Some(e.as_ref()),
            ServeError::Io(e) => Some(e.as_ref()),
            ServeError::Merge(e) => Some(e.as_ref()),
            ServeError::CheckpointMismatch { .. } => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Verdict store
// ---------------------------------------------------------------------------

/// One memoized row: either an undefended baseline run or a defended
/// matrix cell, exactly as the campaign engine computes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoredVerdict {
    /// An undefended baseline run of one attack on one config.
    Baseline {
        /// Whether the attack recovered the planted secret.
        leaked: bool,
        /// Cycles the undefended run consumed.
        cycles: u64,
        /// Theorem 1 on the attack graph: does an authorization race
        /// with a secret access?
        graph_race: bool,
    },
    /// One attack × defense-stack × config evaluation.
    Cell {
        /// Machine verdict from running the attack under the stack.
        mechanism: Verdict,
        /// Graph verdict: would the stack's strategies close the leak
        /// path? `None` when no member strategy has an insertion point.
        strategy_sufficient: Option<bool>,
    },
}

/// Where a query answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerSource {
    /// Served from the memoized index — no simulation.
    Hit,
    /// This caller ran the simulation (miss-path flight leader).
    Simulated,
    /// Another caller's in-flight simulation of the same cell was
    /// awaited and its result shared (single-flight follower).
    Coalesced,
}

/// A point-query answer: the verdict plus what it cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Answer {
    /// Machine-level verdict. For a baseline (no-stack) query this is
    /// [`Verdict::Leaked`]/[`Verdict::Blocked`] of the undefended run.
    pub verdict: Verdict,
    /// Graph-level verdict: the baseline race for a no-stack query,
    /// strategy sufficiency for a stacked one (`None` when the graph has
    /// no insertion point for the stack).
    pub graph: Option<bool>,
    /// Undefended baseline cycles for this attack × config, when the
    /// store knows them (always for a baseline answer; for a cell answer
    /// only if the matching baseline row was ingested or simulated).
    pub cycles: Option<u64>,
    /// How the answer was produced.
    pub source: AnswerSource,
}

/// The result slot one miss-path flight publishes to its followers.
#[derive(Default)]
struct Flight {
    done: Mutex<Option<Result<StoredVerdict, ServeError>>>,
    cv: Condvar,
}

/// An indexed, memoized verdict store with simulate-on-miss.
///
/// Ingest saved matrices or parts ([`VerdictStore::ingest_matrix`] /
/// [`VerdictStore::ingest_part`]); answer point lookups from the index at
/// millions of queries per second ([`VerdictStore::lookup`], or
/// [`VerdictStore::get`] with a precomputed [`VerdictStore::cell_key`]);
/// and let [`VerdictStore::query`] fall back to one warm-machine
/// simulation per missing cell, deduplicating concurrent misses through a
/// single-flight table. [`VerdictStore::simulations`] counts exactly how
/// many miss flights ran — the hook the single-flight tests pin to 1.
#[derive(Debug, Default)]
pub struct VerdictStore {
    rows: RwLock<HashMap<u64, StoredVerdict>>,
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
    pool: RunnerPool,
    simulations: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl fmt::Debug for Flight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Flight").finish_non_exhaustive()
    }
}

impl VerdictStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized rows (baselines + cells).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.read().map(|r| r.len()).unwrap_or(0)
    }

    /// Whether the store holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many simulate-on-miss flights have run. Single-flight dedup
    /// means N concurrent queries for one missing cell advance this by
    /// exactly 1.
    #[must_use]
    pub fn simulations(&self) -> u64 {
        self.simulations.load(Ordering::Relaxed)
    }

    /// How many lookups/queries were answered from the index.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many queries missed the index (counting coalesced followers).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Ingests every row of a saved matrix; returns the number of rows
    /// added or replaced. Rows are keyed by the content fingerprints the
    /// incremental runner uses, so re-ingesting the same artifact is
    /// idempotent and matrices from different specs coexist.
    pub fn ingest_matrix(&self, matrix: &CampaignMatrix) -> usize {
        self.ingest_rows(matrix.baselines(), matrix.cells())
    }

    /// Ingests every row of a shard part (or checkpoint chunk); returns
    /// the number of rows added or replaced.
    pub fn ingest_part(&self, part: &CampaignPart) -> usize {
        self.ingest_rows(part.baselines(), part.cells())
    }

    fn ingest_rows(&self, baselines: &[BaselineCell], cells: &[MatrixCell]) -> usize {
        let Ok(mut rows) = self.rows.write() else {
            return 0;
        };
        rows.reserve(baselines.len() + cells.len());
        let mut ingested = 0;
        // Degraded rows (quarantined / timed-out) never enter the store:
        // a memoized verdict must be machine truth, and skipping them lets
        // a later fault-free run heal the store incrementally.
        for b in baselines.iter().filter(|b| b.outcome.is_ok()) {
            rows.insert(
                b.fingerprint,
                StoredVerdict::Baseline {
                    leaked: b.leaked,
                    cycles: b.cycles,
                    graph_race: b.graph_race,
                },
            );
            ingested += 1;
        }
        for c in cells.iter().filter(|c| c.outcome.is_ok()) {
            rows.insert(
                c.fingerprint,
                StoredVerdict::Cell {
                    mechanism: c.evaluation.mechanism,
                    strategy_sufficient: c.evaluation.strategy_sufficient,
                },
            );
            ingested += 1;
        }
        ingested
    }

    /// The index key for an undefended baseline row. Key construction
    /// hashes the config contents; hoist it out of a query loop with
    /// [`config_digest`] + [`VerdictStore::baseline_key_for_digest`] when
    /// hammering the hit path.
    #[must_use]
    pub fn baseline_key(attack: &str, cfg: &UarchConfig) -> u64 {
        baseline_fingerprint(attack, config_digest(cfg))
    }

    /// [`VerdictStore::baseline_key`] with the config digest precomputed.
    #[must_use]
    pub fn baseline_key_for_digest(attack: &str, digest: u64) -> u64 {
        baseline_fingerprint(attack, digest)
    }

    /// The index key for a defended cell row.
    #[must_use]
    pub fn cell_key(attack: &str, stack: &DefenseStack, cfg: &UarchConfig) -> u64 {
        Self::cell_key_for_digest(attack, stack, config_digest(cfg))
    }

    /// [`VerdictStore::cell_key`] with the config digest precomputed.
    #[must_use]
    pub fn cell_key_for_digest(attack: &str, stack: &DefenseStack, digest: u64) -> u64 {
        cell_fingerprint(attack, stack.name(), &stack.strategy_token(), digest)
    }

    /// The raw indexed hit path: the memoized row under `key`, if any.
    /// This is the operation the `verdict_store` bench drives at millions
    /// of lookups per second.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<StoredVerdict> {
        let row = self.rows.read().ok()?.get(&key).copied();
        match row {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => None,
        }
    }

    /// Hit-only point lookup: `None` on a miss (no simulation). `stack =
    /// None` asks for the undefended baseline.
    #[must_use]
    pub fn lookup(
        &self,
        attack: &str,
        stack: Option<&DefenseStack>,
        cfg: &UarchConfig,
    ) -> Option<Answer> {
        let digest = config_digest(cfg);
        let key = match stack {
            None => Self::baseline_key_for_digest(attack, digest),
            Some(s) => Self::cell_key_for_digest(attack, s, digest),
        };
        let stored = self.get(key)?;
        Some(self.answer(attack, digest, stored, AnswerSource::Hit))
    }

    /// Point query with simulate-on-miss.
    ///
    /// A hit is a lock-free-read index probe. A miss checks out a warm
    /// [`RunnerPool`] machine and computes the row exactly as the
    /// campaign engine would — graph verdict from a
    /// [`defenses::PatchSession`], machine verdict from
    /// [`defenses::verify_stack_warm`] — then memoizes it. Concurrent
    /// misses for the same cell coalesce onto a single flight: one
    /// caller simulates, the rest block on its result and return the
    /// identical verdict with [`AnswerSource::Coalesced`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Attack`] when the simulation fails; every coalesced
    /// caller of the failed flight receives the same (shared) error.
    /// Failures are not memoized — a later query retries.
    pub fn query(
        &self,
        attack: &'static dyn Attack,
        stack: Option<&DefenseStack>,
        cfg: &UarchConfig,
    ) -> Result<Answer, ServeError> {
        let name = attack.info().name;
        let digest = config_digest(cfg);
        let key = match stack {
            None => Self::baseline_key_for_digest(name, digest),
            Some(s) => Self::cell_key_for_digest(name, s, digest),
        };
        if let Some(stored) = self.get(key) {
            return Ok(self.answer(name, digest, stored, AnswerSource::Hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Single-flight: the first thread to register the key becomes the
        // leader and simulates; everyone else waits on its flight. The
        // index is re-probed under the flight-table lock so a result
        // published between our probe and here cannot be missed.
        let (flight, leader) = {
            let mut inflight = self.inflight.lock().expect("flight table poisoned");
            if let Some(stored) = self.rows.read().ok().and_then(|r| r.get(&key).copied()) {
                return Ok(self.answer(name, digest, stored, AnswerSource::Hit));
            }
            match inflight.get(&key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight::default());
                    inflight.insert(key, Arc::clone(&f));
                    (f, true)
                }
            }
        };
        let result = if leader {
            self.simulations.fetch_add(1, Ordering::Relaxed);
            let result = self.simulate(attack, stack, cfg);
            if let Ok(stored) = &result {
                if let Ok(mut rows) = self.rows.write() {
                    rows.insert(key, *stored);
                }
            }
            *flight.done.lock().expect("flight poisoned") = Some(result.clone());
            flight.cv.notify_all();
            self.inflight
                .lock()
                .expect("flight table poisoned")
                .remove(&key);
            result
        } else {
            let mut done = flight.done.lock().expect("flight poisoned");
            while done.is_none() {
                done = flight.cv.wait(done).expect("flight poisoned");
            }
            done.clone().expect("checked is_some")
        };
        let source = if leader {
            AnswerSource::Simulated
        } else {
            AnswerSource::Coalesced
        };
        result.map(|stored| self.answer(name, digest, stored, source))
    }

    /// Computes one missing row with the campaign engine's exact recipe.
    fn simulate(
        &self,
        attack: &'static dyn Attack,
        stack: Option<&DefenseStack>,
        cfg: &UarchConfig,
    ) -> Result<StoredVerdict, ServeError> {
        let mut runner = self.pool.checkout();
        let result = match stack {
            None => {
                let out = runner.run(attack, cfg)?;
                let graph_race = defenses::PatchSession::new(attack).graph_race();
                Ok(StoredVerdict::Baseline {
                    leaked: out.leaked,
                    cycles: out.cycles,
                    graph_race,
                })
            }
            Some(stack) => {
                let mut session = defenses::PatchSession::new(attack);
                let strategy_sufficient = session.graph_sufficient(stack)?;
                let mechanism = defenses::verify_stack_warm(stack, attack, cfg, &mut runner)?;
                Ok(StoredVerdict::Cell {
                    mechanism,
                    strategy_sufficient,
                })
            }
        };
        self.pool.checkin(runner);
        result
    }

    fn answer(
        &self,
        attack: &str,
        digest: u64,
        stored: StoredVerdict,
        source: AnswerSource,
    ) -> Answer {
        match stored {
            StoredVerdict::Baseline {
                leaked,
                cycles,
                graph_race,
            } => Answer {
                verdict: if leaked {
                    Verdict::Leaked
                } else {
                    Verdict::Blocked
                },
                graph: Some(graph_race),
                cycles: Some(cycles),
                source,
            },
            StoredVerdict::Cell {
                mechanism,
                strategy_sufficient,
            } => {
                let base = Self::baseline_key_for_digest(attack, digest);
                let cycles = self
                    .rows
                    .read()
                    .ok()
                    .and_then(|rows| match rows.get(&base) {
                        Some(StoredVerdict::Baseline { cycles, .. }) => Some(*cycles),
                        _ => None,
                    });
                Answer {
                    verdict: mechanism,
                    graph: strategy_sufficient,
                    cycles,
                    source,
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Work-stealing scheduler
// ---------------------------------------------------------------------------

/// How many tasks a scheduler chunk carries by default: fine enough that
/// a killed run loses little and stragglers are worth stealing, coarse
/// enough that the per-chunk graph-verdict precompute amortizes.
pub const DEFAULT_CHUNK_TASKS: usize = 16;

/// One completed chunk, as reported to a [`ChunkObserver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkEvent {
    /// Chunk index in `0..of`.
    pub index: usize,
    /// Total chunks in this schedule.
    pub of: usize,
    /// Chunks completed so far (resumed chunks count from the start).
    pub completed: usize,
}

/// Live progress callback: invoked once per chunk as it completes,
/// possibly concurrently from worker threads.
pub type ChunkObserver<'a> = &'a (dyn Fn(ChunkEvent) + Sync);

/// A checkpoint file that existed on disk but could not be used for
/// resume — zero-length, torn mid-write, or otherwise unreadable — and
/// whose chunk was therefore re-run. Surfaced in
/// [`ScheduleReport::repaired`] so a damaged checkpoint is never silently
/// swallowed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkRepair {
    /// Index of the chunk that was re-run.
    pub index: usize,
    /// The unusable checkpoint file.
    pub path: PathBuf,
    /// Why it could not be loaded (e.g. a typed truncation offset).
    pub reason: String,
}

/// What a scheduled run did, alongside the merged matrix.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScheduleReport {
    /// Chunks the cube was decomposed into.
    pub chunks: usize,
    /// Chunks restored from checkpoint files without any re-simulation.
    pub resumed: usize,
    /// Chunks simulated by this run's workers.
    pub executed: usize,
    /// Straggler chunks speculatively re-claimed by an idle worker while
    /// the original claimant was still running (duplicated, deterministic
    /// work — first writer wins).
    pub stolen: usize,
    /// Tasks (baselines + cells) restored from checkpoints.
    pub resumed_tasks: usize,
    /// Checkpoint files that existed but were unusable (zero-length,
    /// truncated, unreadable); their chunks were re-run and their
    /// checkpoints rewritten.
    pub repaired: Vec<ChunkRepair>,
}

/// What [`Scheduler::load_chunk`] found on disk for one chunk.
enum ChunkLoad {
    /// No checkpoint file; the chunk simply runs.
    Missing,
    /// A file exists but cannot be used for resume; the chunk re-runs and
    /// the repair is reported.
    Damaged { path: PathBuf, reason: String },
    /// A verified checkpoint: adopted with zero re-simulation.
    Loaded(CampaignPart),
}

/// Per-chunk claim state on the shared board.
enum ChunkState {
    Pending,
    Running { claims: usize },
    Done(CampaignPart),
}

struct Board {
    states: Vec<ChunkState>,
    completed: usize,
    stolen: usize,
    failed: Option<ServeError>,
}

/// A resumable, work-stealing campaign scheduler.
///
/// The cube is split into fine-grained contiguous chunks
/// ([`CampaignSpec::shards`] with one task-thread per chunk, so chunk
/// results are bit-identical to the corresponding slice of a single-shot
/// run). Workers pull chunks from a shared board; an idle worker with
/// nothing pending **steals** a running straggler chunk (speculative
/// duplicate execution — results are deterministic, the first finisher
/// publishes). With a checkpoint directory every finished chunk is
/// written as a `campaign-checkpoint` document, and the next run resumes:
/// completed chunks load from disk (zero re-simulation), half-written or
/// zero-length ones surface as typed
/// [`Truncated`](crate::jsonio::JsonErrorKind) errors, are re-run, and
/// are reported in [`ScheduleReport::repaired`], and chunks from a
/// *different* campaign are a hard [`ServeError::CheckpointMismatch`].
#[derive(Debug, Clone)]
pub struct Scheduler {
    spec: CampaignSpec,
    workers: usize,
    chunk_tasks: usize,
    checkpoint: Option<PathBuf>,
}

impl Scheduler {
    /// Schedules `spec` with default workers (all available
    /// parallelism), [`DEFAULT_CHUNK_TASKS`]-task chunks, and no
    /// checkpointing.
    #[must_use]
    pub fn new(spec: &CampaignSpec) -> Self {
        Scheduler {
            spec: spec.clone(),
            workers: 0,
            chunk_tasks: DEFAULT_CHUNK_TASKS,
            checkpoint: None,
        }
    }

    /// Worker-thread count; `0` (the default) means all available
    /// parallelism.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Tasks per chunk (minimum 1). Ignored when resuming from a
    /// checkpoint directory, which fixes the chunk geometry.
    #[must_use]
    pub fn chunk_tasks(mut self, tasks: usize) -> Self {
        self.chunk_tasks = tasks.max(1);
        self
    }

    /// Checkpoint directory: every completed chunk is persisted here as
    /// `chunk-NNNNN.json`, and a later run over the same spec resumes
    /// from whatever completed. The directory is created if absent.
    #[must_use]
    pub fn checkpoint(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(dir.into());
        self
    }

    /// Runs the schedule to completion and merges the chunks.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on simulation failure, checkpoint I/O failure, or
    /// a checkpoint directory belonging to a different campaign.
    pub fn run(&self) -> Result<(CampaignMatrix, ScheduleReport), ServeError> {
        self.run_observed(None, None)
    }

    /// [`Scheduler::run`], streaming every completed chunk into `store`
    /// as it lands (resumed chunks are ingested up front).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scheduler::run`].
    pub fn run_into(
        &self,
        store: &VerdictStore,
    ) -> Result<(CampaignMatrix, ScheduleReport), ServeError> {
        self.run_observed(Some(store), None)
    }

    /// [`Scheduler::run`] with optional streaming ingest and per-chunk
    /// progress observation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scheduler::run`].
    pub fn run_observed(
        &self,
        store: Option<&VerdictStore>,
        progress: Option<ChunkObserver<'_>>,
    ) -> Result<(CampaignMatrix, ScheduleReport), ServeError> {
        // Chunk results must be bit-identical to the matching slice of a
        // single-shot run regardless of the serving worker count, so the
        // inner task executor is pinned to one thread per chunk.
        let mut spec = self.spec.clone();
        spec.threads = 1;
        let fingerprint = spec.fingerprint();
        let chunks = self.chunk_count(&spec)?;
        let shards = spec.shards(chunks);
        let mut report = ScheduleReport {
            chunks,
            ..ScheduleReport::default()
        };

        // Resume: adopt every completed chunk on disk before starting.
        let total = spec.total_tasks();
        let mut states: Vec<ChunkState> = Vec::with_capacity(chunks);
        for index in 0..chunks {
            let range = (index * total / chunks, (index + 1) * total / chunks);
            match self.load_chunk(index, chunks, range, fingerprint)? {
                ChunkLoad::Loaded(part) => {
                    report.resumed += 1;
                    report.resumed_tasks += part.len();
                    if let Some(store) = store {
                        store.ingest_part(&part);
                    }
                    states.push(ChunkState::Done(part));
                }
                ChunkLoad::Damaged { path, reason } => {
                    report.repaired.push(ChunkRepair {
                        index,
                        path,
                        reason,
                    });
                    states.push(ChunkState::Pending);
                }
                ChunkLoad::Missing => states.push(ChunkState::Pending),
            }
        }
        let completed = report.resumed;
        if let Some(f) = progress {
            let mut seen = 0;
            for (index, s) in states.iter().enumerate() {
                if matches!(s, ChunkState::Done(_)) {
                    seen += 1;
                    f(ChunkEvent {
                        index,
                        of: chunks,
                        completed: seen,
                    });
                }
            }
        }

        let board = Mutex::new(Board {
            states,
            completed,
            stolen: 0,
            failed: None,
        });
        let executed = AtomicUsize::new(0);
        let workers = match self.workers {
            0 => thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            w => w,
        }
        .min((chunks - report.resumed).max(1));

        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| self.worker(&board, &shards, &executed, store, progress));
            }
        });

        let board = board.into_inner().expect("scheduler board poisoned");
        if let Some(err) = board.failed {
            return Err(err);
        }
        report.executed = executed.load(Ordering::Relaxed);
        report.stolen = board.stolen;
        let parts: Vec<CampaignPart> = board
            .states
            .into_iter()
            .map(|s| match s {
                ChunkState::Done(p) => p,
                _ => unreachable!("scheduler finished with unfinished chunks"),
            })
            .collect();
        let matrix = CampaignMatrix::merge(parts)?;
        Ok((matrix, report))
    }

    /// One worker: claim pending chunks, then steal running stragglers,
    /// until the board is drained or a chunk fails.
    fn worker(
        &self,
        board: &Mutex<Board>,
        shards: &[crate::campaign::CampaignShard],
        executed: &AtomicUsize,
        store: Option<&VerdictStore>,
        progress: Option<ChunkObserver<'_>>,
    ) {
        loop {
            let claim = {
                let mut board = board.lock().expect("scheduler board poisoned");
                if board.failed.is_some() {
                    return;
                }
                let pending = board
                    .states
                    .iter()
                    .position(|s| matches!(s, ChunkState::Pending));
                match pending {
                    Some(i) => {
                        board.states[i] = ChunkState::Running { claims: 1 };
                        Some(i)
                    }
                    None => {
                        // Nothing pending: steal the least-claimed
                        // straggler (one backup copy per chunk, so idle
                        // workers cannot stampede the last chunk).
                        let steal = board
                            .states
                            .iter()
                            .enumerate()
                            .filter_map(|(i, s)| match s {
                                ChunkState::Running { claims: 1 } => Some(i),
                                _ => None,
                            })
                            .next();
                        if let Some(i) = steal {
                            board.states[i] = ChunkState::Running { claims: 2 };
                            board.stolen += 1;
                            Some(i)
                        } else {
                            None
                        }
                    }
                }
            };
            let Some(index) = claim else { return };
            match shards[index].run() {
                Ok(part) => {
                    let (first, completed) = {
                        let mut board = board.lock().expect("scheduler board poisoned");
                        if matches!(board.states[index], ChunkState::Done(_)) {
                            (false, board.completed)
                        } else {
                            board.states[index] = ChunkState::Done(part.clone());
                            board.completed += 1;
                            (true, board.completed)
                        }
                    };
                    if !first {
                        continue;
                    }
                    executed.fetch_add(1, Ordering::Relaxed);
                    if let Err(e) = self.save_chunk(index, &part) {
                        let mut board = board.lock().expect("scheduler board poisoned");
                        board.failed.get_or_insert(e);
                        return;
                    }
                    if let Some(store) = store {
                        store.ingest_part(&part);
                    }
                    if let Some(f) = progress {
                        f(ChunkEvent {
                            index,
                            of: shards.len(),
                            completed,
                        });
                    }
                }
                Err(e) => {
                    let mut board = board.lock().expect("scheduler board poisoned");
                    board.failed.get_or_insert(e.into());
                    return;
                }
            }
        }
    }

    /// The chunk count for this run: adopted from an existing checkpoint
    /// directory when one holds a loadable chunk (so a changed chunk-size
    /// flag cannot silently re-tile a half-finished run), derived from
    /// [`Scheduler::chunk_tasks`] otherwise.
    fn chunk_count(&self, spec: &CampaignSpec) -> Result<usize, ServeError> {
        let fresh = spec.total_tasks().max(1).div_ceil(self.chunk_tasks);
        let Some(dir) = &self.checkpoint else {
            return Ok(fresh);
        };
        std::fs::create_dir_all(dir)?;
        let mut names: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("chunk-") && n.ends_with(".json"))
            })
            .collect();
        names.sort();
        for path in names {
            // A truncated file (worker killed mid-write) is unusable for
            // geometry; keep probing for any chunk that finished.
            if let Ok(part) = CampaignPart::load_checkpoint_json(&path) {
                return Ok(part.of().max(1));
            }
        }
        Ok(fresh)
    }

    fn chunk_path(dir: &Path, index: usize) -> PathBuf {
        dir.join(format!("chunk-{index:05}.json"))
    }

    /// Loads chunk `index` from the checkpoint directory, if present and
    /// usable. A damaged file (zero-length, truncated mid-write, or
    /// otherwise unreadable) is "not done" — the chunk re-runs — but the
    /// file and the reason are surfaced ([`ChunkLoad::Damaged`] →
    /// [`ScheduleReport::repaired`]) instead of being silently swallowed.
    /// A cleanly-loading chunk from a different spec — or with foreign
    /// shard geometry — is a hard mismatch.
    fn load_chunk(
        &self,
        index: usize,
        of: usize,
        range: (usize, usize),
        fingerprint: u64,
    ) -> Result<ChunkLoad, ServeError> {
        let Some(dir) = &self.checkpoint else {
            return Ok(ChunkLoad::Missing);
        };
        let path = Self::chunk_path(dir, index);
        if !path.exists() {
            return Ok(ChunkLoad::Missing);
        }
        match CampaignPart::load_checkpoint_json(&path) {
            Ok(part) => {
                let geometry_ok =
                    part.index() == index && part.of() == of && (part.start(), part.end()) == range;
                if part.spec_fingerprint() != fingerprint || !geometry_ok {
                    return Err(ServeError::CheckpointMismatch {
                        index,
                        expected: fingerprint,
                        found: part.spec_fingerprint(),
                    });
                }
                Ok(ChunkLoad::Loaded(part))
            }
            Err(e) => Ok(ChunkLoad::Damaged {
                path,
                reason: e.to_string(),
            }),
        }
    }

    fn save_chunk(&self, index: usize, part: &CampaignPart) -> Result<(), ServeError> {
        let Some(dir) = &self.checkpoint else {
            return Ok(());
        };
        part.save_checkpoint_json(Self::chunk_path(dir, index))?;
        Ok(())
    }
}
