//! The campaign engine: batch evaluation of the full
//! attack × defense × configuration cube.
//!
//! The paper's deliverables are *matrices* — Table III's attack variants,
//! Figure 8's four strategies, Table II's defense catalog — and the seed
//! evaluated them one `(attack, defense)` pair at a time with hand-copied
//! attack lists in every binary. A campaign instead takes the registries
//! ([`attacks::registry`], [`defenses::registry`]) plus a *configuration
//! grid*, evaluates every cell in parallel, and returns a
//! [`CampaignMatrix`] with deterministic ordering, O(1) lookups, the §V-B
//! "false sense of security" extraction, and JSON/CSV export.
//!
//! The defense axis is a list of [`DefenseStack`]s: singleton stacks give
//! the classic one-defense-per-column sweep (the registry default), and
//! curated bundles — [`defenses::presets::linux_default`], parsed
//! `"kpti+retpoline"` expressions — make the **attack × stack** matrix the
//! paper's §V-B discussion calls for, via
//! [`CampaignSpecBuilder::defense_stacks`].
//!
//! The configuration axis is built from **typed knobs** over
//! [`UarchConfig`]: each [`Knob`] axis contributes its values to a full
//! cartesian grid, with auto-generated config names:
//!
//! ```
//! use specgraph::campaign::{CampaignMatrix, CampaignSpec, Knob, PredictorFlavor};
//! use uarch::UarchConfig;
//!
//! # fn main() -> Result<(), attacks::AttackError> {
//! let spec = CampaignSpec::builder(UarchConfig::default())
//!     .attacks(attacks::registry().iter().copied().take(2))
//!     .defenses(defenses::registry().iter().copied().take(2))
//!     .axis(Knob::RobDepth, [16usize, 64])
//!     .axis(
//!         Knob::Predictor,
//!         [PredictorFlavor::Shared, PredictorFlavor::FlushOnSwitch],
//!     )
//!     .build();
//! let matrix = CampaignMatrix::run(&spec)?;
//! assert_eq!(matrix.shape(), (2, 2, 4)); // 2×2 knob grid = 4 config slices
//! assert_eq!(matrix.configs[0], "rob=16 pred=shared");
//! # Ok(())
//! # }
//! ```
//!
//! Work is distributed over `std::thread::scope` workers round-robin, and
//! results are reassembled by cell index, so the output is byte-identical
//! regardless of thread count or scheduling. That index-addressed,
//! deterministic cell order is also what makes the cube **shardable**
//! ([`CampaignSpec::shards`] / [`CampaignMatrix::merge`]: merging is
//! validated concatenation) and **incrementally re-evaluable**
//! ([`CampaignMatrix::run_incremental`]: every cell carries a content
//! fingerprint — attack name, defense name + strategy, config contents —
//! and cells whose fingerprint appears in a previous matrix, e.g. one
//! loaded with [`CampaignMatrix::load_json`], are reused instead of
//! re-simulated).
//!
//! ## Cross-process sharding
//!
//! Shards are *artifacts*, not just in-process values: a
//! [`CampaignPart`] serializes to JSON (schema version
//! [`SCHEMA_VERSION`], with a shard header carrying the spec fingerprint
//! and the shard's slot in the task range), so `n` independent processes
//! — or machines — can each run one shard, write its part file, and a
//! final process can merge the parts bit-identically to a single-shot
//! run. [`CampaignMatrix::merge`] refuses parts whose
//! [`CampaignSpec::fingerprint`] differs, so shards of *different*
//! campaigns (different attack lists, knob values, or base
//! configurations) cannot be combined silently:
//!
//! ```
//! use specgraph::campaign::{CampaignMatrix, CampaignPart, CampaignSpec};
//! use uarch::UarchConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = CampaignSpec::builder(UarchConfig::default())
//!     .attacks(attacks::registry().iter().copied().take(2))
//!     .defenses(defenses::registry().iter().copied().take(1))
//!     .build();
//!
//! // Each of these runs could happen in its own process:
//! // `part.save_json(path)` there, `CampaignPart::load_json(path)` here.
//! let parts: Vec<CampaignPart> = spec
//!     .shards(2)
//!     .iter()
//!     .map(|shard| {
//!         let part = shard.run()?;
//!         Ok(CampaignPart::from_json(&part.to_json())?) // disk round trip
//!     })
//!     .collect::<Result<_, Box<dyn std::error::Error>>>()?;
//!
//! let merged = CampaignMatrix::merge(parts)?;
//! assert_eq!(merged.to_json(), CampaignMatrix::run(&spec)?.to_json());
//! # Ok(())
//! # }
//! ```
//!
//! Saved matrices feed [`CampaignMatrix::run_incremental`] across the
//! same process boundary: re-running an unchanged spec against a loaded
//! matrix evaluates zero cells.

use crate::jsonio::{self, Json, JsonError};
use crate::scenario::Evaluation;
use attacks::{Attack, AttackError, AttackInfo, BatchRunner};
use defenses::{Defense, DefenseStack, Strategy, Verdict};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::path::Path;
use std::thread;
use uarch::UarchConfig;

/// Schema version stamped on every matrix, part, and checkpoint document
/// this module writes (`"version"` plus a `"kind"` discriminator:
/// `"campaign-matrix"`, `"campaign-part"`, or `"campaign-checkpoint"`).
/// Version 7 adds degraded-cell outcomes: rows whose simulation was
/// quarantined after a panic or timed out against the cycle budget carry
/// a typed [`CellOutcome`] (`"mechanism": "quarantined"`/`"timed_out"`
/// plus a reason/budget field) instead of aborting the producing run.
/// Fault-free rows are byte-identical to version 5 apart from the
/// version number, so version-5 documents still load, as do version-4
/// stack matrices, version-3 single-defense documents and headerless
/// version-2 matrices. Any other version is a typed
/// [`CampaignIoError::Version`]. (Version 6 is skipped: the fuzz corpus
/// namespace owns it.)
pub const SCHEMA_VERSION: u64 = 7;

/// The pre-outcome schema (no degraded rows, `campaign-checkpoint` kind
/// present). Accepted on load, never written.
const PRE_OUTCOME_VERSION: u64 = 5;

/// The pre-checkpoint schema (stack-valued defense axis, no
/// `campaign-checkpoint` kind). Accepted on load, never written.
const STACK_MATRIX_VERSION: u64 = 4;

/// The pre-stack schema: single-defense documents with `kind` headers.
/// Accepted on load (a single defense name parses as a singleton stack),
/// never written.
const SINGLE_DEFENSE_VERSION: u64 = 3;

/// The pre-part matrix schema (no `kind` header); accepted on load for
/// backward compatibility, never written.
const LEGACY_MATRIX_VERSION: u64 = 2;

// ---------------------------------------------------------------------------
// Typed configuration knobs
// ---------------------------------------------------------------------------

/// A named [`UarchConfig`] dimension a campaign can sweep.
///
/// Each knob maps one grid-axis value onto the simulator configuration;
/// the builder ([`CampaignSpec::builder`]) expands the cartesian product
/// of all declared axes into the campaign's config slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Knob {
    /// Re-order buffer capacity (`rob_capacity`).
    RobDepth,
    /// Instructions fetched per cycle (`fetch_width`).
    FetchWidth,
    /// Instructions issued per cycle (`issue_width`).
    IssueWidth,
    /// Cache geometry: number of sets (`cache_sets`).
    CacheSets,
    /// Cache geometry: associativity (`cache_ways`).
    CacheWays,
    /// Line fill buffer entries (`lfb_entries`).
    LfbEntries,
    /// Store buffer entries (`store_buffer_entries`).
    StoreBufferEntries,
    /// Return stack buffer depth (`rsb_depth`).
    RsbDepth,
    /// L1 hit latency in cycles (`cache_hit_latency`).
    CacheHitLatency,
    /// Miss-to-memory latency in cycles (`cache_miss_latency`).
    CacheMissLatency,
    /// Privilege/permission check latency (`permission_check_latency`).
    PermissionCheckLatency,
    /// Predictor flavor (shared / flushed / retpoline-style / stuffed RSB).
    Predictor,
    /// A Figure-8 global hardening mechanism (the axis behind the old
    /// 5-slice strategy sweep, now one knob among many).
    Hardening,
}

impl Knob {
    /// Applies `value` to `cfg`.
    ///
    /// # Panics
    ///
    /// Panics when the value kind does not fit the knob (e.g. a numeric
    /// value for [`Knob::Predictor`]) — a spec-construction bug, caught at
    /// [`CampaignSpecBuilder::build`] time.
    fn apply(self, cfg: &mut UarchConfig, value: KnobValue) {
        match (self, value) {
            (Knob::RobDepth, KnobValue::Num(n)) => cfg.rob_capacity = to_usize(n),
            (Knob::FetchWidth, KnobValue::Num(n)) => cfg.fetch_width = to_usize(n),
            (Knob::IssueWidth, KnobValue::Num(n)) => cfg.issue_width = to_usize(n),
            (Knob::CacheSets, KnobValue::Num(n)) => cfg.cache_sets = to_usize(n),
            (Knob::CacheWays, KnobValue::Num(n)) => cfg.cache_ways = to_usize(n),
            (Knob::LfbEntries, KnobValue::Num(n)) => cfg.lfb_entries = to_usize(n),
            (Knob::StoreBufferEntries, KnobValue::Num(n)) => {
                cfg.store_buffer_entries = to_usize(n);
            }
            (Knob::RsbDepth, KnobValue::Num(n)) => cfg.rsb_depth = to_usize(n),
            (Knob::CacheHitLatency, KnobValue::Num(n)) => cfg.cache_hit_latency = n,
            (Knob::CacheMissLatency, KnobValue::Num(n)) => cfg.cache_miss_latency = n,
            (Knob::PermissionCheckLatency, KnobValue::Num(n)) => {
                cfg.permission_check_latency = n;
            }
            (Knob::Predictor, KnobValue::Predictor(p)) => p.apply(cfg),
            (Knob::Hardening, KnobValue::Hardening(h)) => h.apply(cfg),
            (knob, value) => panic!("knob {knob:?} cannot take value {value:?}"),
        }
    }

    /// The axis token this knob contributes to auto-generated config names.
    fn label(self, value: KnobValue) -> String {
        match (self, value) {
            (Knob::RobDepth, KnobValue::Num(n)) => format!("rob={n}"),
            (Knob::FetchWidth, KnobValue::Num(n)) => format!("fetch={n}"),
            (Knob::IssueWidth, KnobValue::Num(n)) => format!("issue={n}"),
            (Knob::CacheSets, KnobValue::Num(n)) => format!("sets={n}"),
            (Knob::CacheWays, KnobValue::Num(n)) => format!("ways={n}"),
            (Knob::LfbEntries, KnobValue::Num(n)) => format!("lfb={n}"),
            (Knob::StoreBufferEntries, KnobValue::Num(n)) => format!("stbuf={n}"),
            (Knob::RsbDepth, KnobValue::Num(n)) => format!("rsb={n}"),
            (Knob::CacheHitLatency, KnobValue::Num(n)) => format!("hitlat={n}"),
            (Knob::CacheMissLatency, KnobValue::Num(n)) => format!("misslat={n}"),
            (Knob::PermissionCheckLatency, KnobValue::Num(n)) => format!("permlat={n}"),
            (Knob::Predictor, KnobValue::Predictor(p)) => format!("pred={}", p.token()),
            // Hardening labels stand alone so single-axis Figure-8 sweeps
            // keep the paper's slice names ("baseline", "② NDA", …).
            (Knob::Hardening, KnobValue::Hardening(h)) => h.label().to_owned(),
            (knob, value) => panic!("knob {knob:?} cannot take value {value:?}"),
        }
    }
}

fn to_usize(n: u64) -> usize {
    usize::try_from(n).expect("knob value fits in usize")
}

/// One value on a [`Knob`] axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum KnobValue {
    /// A numeric knob setting (sizes, widths, latencies).
    Num(u64),
    /// A predictor flavor (for [`Knob::Predictor`]).
    Predictor(PredictorFlavor),
    /// A hardening mechanism (for [`Knob::Hardening`]).
    Hardening(Hardening),
}

impl From<usize> for KnobValue {
    fn from(n: usize) -> Self {
        KnobValue::Num(n as u64)
    }
}

impl From<PredictorFlavor> for KnobValue {
    fn from(p: PredictorFlavor) -> Self {
        KnobValue::Predictor(p)
    }
}

impl From<Hardening> for KnobValue {
    fn from(h: Hardening) -> Self {
        KnobValue::Hardening(h)
    }
}

/// How the front-end predictors behave across contexts — the axis the
/// branch-history attacks (Spectre v2, Spectre-RSB, Retbleed) are
/// sensitive to.
///
/// A [`Knob::Predictor`] axis *pins* the slice's predictor behavior: it
/// assigns all three predictor flags
/// (`flush_predictors_on_switch`/`no_indirect_prediction`/`rsb_stuffing`),
/// overriding whatever the base configuration set, so every slice is
/// exactly the flavor its name claims. Because
/// [`Hardening::FlushPredictors`] sets one of those same flags, the
/// builder rejects combining the two axes rather than letting one
/// silently cancel the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PredictorFlavor {
    /// Untagged predictors shared across contexts (vulnerable baseline).
    Shared,
    /// All predictor state flushed on context switch (IBPB-style, ④).
    FlushOnSwitch,
    /// No indirect-branch prediction at all (retpoline effect).
    NoIndirect,
    /// RSB refilled with benign entries on switches (RSB stuffing).
    StuffedRsb,
}

impl PredictorFlavor {
    /// All flavors, baseline first.
    #[must_use]
    pub fn all() -> [PredictorFlavor; 4] {
        [
            PredictorFlavor::Shared,
            PredictorFlavor::FlushOnSwitch,
            PredictorFlavor::NoIndirect,
            PredictorFlavor::StuffedRsb,
        ]
    }

    /// Pins the predictor flags to exactly this flavor (see the type-level
    /// docs: the axis overrides the base, it does not compose with it).
    fn apply(self, cfg: &mut UarchConfig) {
        cfg.flush_predictors_on_switch = self == PredictorFlavor::FlushOnSwitch;
        cfg.no_indirect_prediction = self == PredictorFlavor::NoIndirect;
        cfg.rsb_stuffing = self == PredictorFlavor::StuffedRsb;
    }

    /// Stable machine-readable token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            PredictorFlavor::Shared => "shared",
            PredictorFlavor::FlushOnSwitch => "flush",
            PredictorFlavor::NoIndirect => "no-indirect",
            PredictorFlavor::StuffedRsb => "stuffed-rsb",
        }
    }

    /// The flavor for a [`PredictorFlavor::token`] string (how the
    /// `campaign` CLI parses `--axis pred=…` values).
    #[must_use]
    pub fn from_token(token: &str) -> Option<PredictorFlavor> {
        Self::all().into_iter().find(|f| f.token() == token)
    }
}

/// A globally applied Figure-8 hardening mechanism (one per distinct
/// simulator knob) — the configuration axis behind the overhead and
/// insufficiency discussions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Hardening {
    /// No hardening: the vulnerable baseline.
    None,
    /// ① loads wait for all older control flow (ubiquitous fencing).
    NoSpeculativeLoads,
    /// ① intra-instruction: permission checks complete before forwarding.
    EagerPermissionCheck,
    /// ② speculative load results are not forwarded (NDA family).
    Nda,
    /// ③ tainted transmitters wait until non-speculative (STT).
    Stt,
    /// ③ speculative misses are delayed (Conditional Speculation).
    DelayOnMiss,
    /// ③ speculative fills go to shadow structures (InvisiSpec/SafeSpec).
    InvisibleSpec,
    /// ③ speculative cache changes undone on squash (CleanupSpec).
    CleanupSpec,
    /// ④ predictor state flushed on context switches (IBPB).
    FlushPredictors,
}

impl Hardening {
    /// Every mechanism, baseline first.
    #[must_use]
    pub fn all() -> [Hardening; 9] {
        [
            Hardening::None,
            Hardening::NoSpeculativeLoads,
            Hardening::EagerPermissionCheck,
            Hardening::Nda,
            Hardening::Stt,
            Hardening::DelayOnMiss,
            Hardening::InvisibleSpec,
            Hardening::CleanupSpec,
            Hardening::FlushPredictors,
        ]
    }

    /// The paper's Figure-8 five-slice sweep: baseline plus one machine
    /// per strategy ①–④ (the old hand-rolled `strategy_sweep`).
    #[must_use]
    pub fn figure8() -> [Hardening; 5] {
        [
            Hardening::None,
            Hardening::NoSpeculativeLoads,
            Hardening::Nda,
            Hardening::Stt,
            Hardening::FlushPredictors,
        ]
    }

    fn apply(self, cfg: &mut UarchConfig) {
        match self {
            Hardening::None => {}
            Hardening::NoSpeculativeLoads => cfg.no_speculative_loads = true,
            Hardening::EagerPermissionCheck => cfg.eager_permission_check = true,
            Hardening::Nda => cfg.nda = true,
            Hardening::Stt => cfg.stt = true,
            Hardening::DelayOnMiss => cfg.delay_on_miss = true,
            Hardening::InvisibleSpec => cfg.invisible_spec = true,
            Hardening::CleanupSpec => cfg.cleanup_spec = true,
            Hardening::FlushPredictors => cfg.flush_predictors_on_switch = true,
        }
    }

    /// Display label (the paper's circled-strategy slice names).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Hardening::None => "baseline",
            Hardening::NoSpeculativeLoads => "① no speculative loads",
            Hardening::EagerPermissionCheck => "① eager permission check",
            Hardening::Nda => "② NDA",
            Hardening::Stt => "③ STT",
            Hardening::DelayOnMiss => "③ delay-on-miss",
            Hardening::InvisibleSpec => "③ InvisiSpec",
            Hardening::CleanupSpec => "③ CleanupSpec",
            Hardening::FlushPredictors => "④ flush predictors",
        }
    }

    /// Stable ASCII token (how the `campaign` CLI spells `--axis
    /// hardening=…` values; the display [`Hardening::label`] keeps the
    /// paper's circled-strategy names).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Hardening::None => "baseline",
            Hardening::NoSpeculativeLoads => "no-spec-loads",
            Hardening::EagerPermissionCheck => "eager-permcheck",
            Hardening::Nda => "nda",
            Hardening::Stt => "stt",
            Hardening::DelayOnMiss => "delay-on-miss",
            Hardening::InvisibleSpec => "invisispec",
            Hardening::CleanupSpec => "cleanup-spec",
            Hardening::FlushPredictors => "flush-predictors",
        }
    }

    /// The mechanism for a [`Hardening::token`] string.
    #[must_use]
    pub fn from_token(token: &str) -> Option<Hardening> {
        Self::all().into_iter().find(|h| h.token() == token)
    }
}

// ---------------------------------------------------------------------------
// Spec and builder
// ---------------------------------------------------------------------------

/// A machine configuration with a human-readable name (one slice of the
/// campaign cube's third axis). Produced by the builder's grid expansion;
/// hand-construction remains possible for irregular slices.
#[derive(Debug, Clone)]
pub struct NamedConfig {
    /// Display name, e.g. `"baseline"` or `"rob=16 pred=shared"`.
    pub name: String,
    /// The simulator configuration evaluated under that name.
    pub config: UarchConfig,
}

impl NamedConfig {
    /// Names a configuration.
    pub fn new(name: impl Into<String>, config: UarchConfig) -> Self {
        NamedConfig {
            name: name.into(),
            config,
        }
    }
}

/// What to evaluate: the three axes of the cube plus the worker count.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Attack axis; defaults to the full [`attacks::registry`].
    pub attacks: Vec<&'static dyn Attack>,
    /// Defense axis: each entry is a [`DefenseStack`] — a singleton for a
    /// classic one-defense column, or a bundle
    /// (`"KAISER/KPTI+Retpoline+IBPB"`) evaluated as one deployment.
    /// Defaults to the full [`defenses::registry`], one singleton each.
    pub defenses: Vec<DefenseStack>,
    /// Configuration axis; defaults to one baseline machine.
    pub configs: Vec<NamedConfig>,
    /// Worker threads; `0` means "all available parallelism".
    pub threads: usize,
    /// Worker-failure policy: panic retries, backoff, and timeout
    /// degradation. Like [`threads`](Self::threads), excluded from
    /// [`fingerprint`](Self::fingerprint) — it changes how failures are
    /// handled, never what a successful cell evaluates to.
    pub resilience: Resilience,
}

/// How the campaign engine handles failing workers — the LHCb-on-HPC
/// posture: workers are *expected* to fail; the campaign completes anyway
/// with typed, degraded rows rather than aborting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resilience {
    /// How many times a panicking cell is retried (on a fresh machine)
    /// before it is quarantined as [`CellOutcome::Quarantined`]. `0`
    /// quarantines on the first panic.
    pub retries: u32,
    /// Sleep between panic retries, scaled linearly by attempt number.
    pub backoff: std::time::Duration,
    /// When set, a cell that exhausts its [`UarchConfig::max_cycles`]
    /// budget degrades to [`CellOutcome::TimedOut`] instead of failing the
    /// run — the runaway-cell watchdog.
    pub degrade_timeouts: bool,
}

impl Default for Resilience {
    fn default() -> Self {
        Resilience {
            retries: 0,
            backoff: std::time::Duration::from_millis(10),
            degrade_timeouts: false,
        }
    }
}

/// How a cell's simulation concluded. `Ok` rows carry machine truth;
/// degraded rows keep their (config-invariant) graph verdicts but report
/// the mechanism column as `"quarantined"`/`"timed_out"` so downstream
/// consumers can tell degraded data from real verdicts. Degraded rows are
/// never reused by incremental runs — a re-run with the fault gone heals
/// them.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum CellOutcome {
    /// The simulation ran to completion; verdicts are machine truth.
    #[default]
    Ok,
    /// The runaway-cell watchdog fired: the simulation exceeded its cycle
    /// budget and was degraded so the campaign terminates.
    TimedOut {
        /// The [`UarchConfig::max_cycles`] budget that was exhausted.
        limit: u64,
    },
    /// The cell panicked through every retry and was quarantined.
    Quarantined {
        /// The (truncated) panic payload.
        reason: String,
    },
}

impl CellOutcome {
    /// Whether this is a completed, machine-truth outcome.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Ok)
    }
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec::builder(UarchConfig::default()).build()
    }
}

impl CampaignSpec {
    /// Starts building a campaign over `base`: full registries, no grid
    /// axes yet. Without any [`axis`](CampaignSpecBuilder::axis) call the
    /// spec has the single config slice `"baseline"`.
    #[must_use]
    pub fn builder(base: UarchConfig) -> CampaignSpecBuilder {
        CampaignSpecBuilder {
            base,
            attacks: attacks::registry().to_vec(),
            defenses: defenses::registry()
                .iter()
                .map(|d| DefenseStack::single(*d))
                .collect(),
            axes: Vec::new(),
            threads: 0,
        }
    }

    /// Total number of evaluation tasks (baseline runs + matrix cells).
    #[must_use]
    pub fn total_tasks(&self) -> usize {
        let (a, d, c) = (self.attacks.len(), self.defenses.len(), self.configs.len());
        a * c + a * d * c
    }

    /// A stable 64-bit digest of the spec's *contents*: attack names,
    /// defense names + strategies, and config names + full config
    /// contents ([`config_digest`]), all in axis order. The worker-thread
    /// count and the [`Resilience`] policy are deliberately excluded —
    /// they change scheduling and failure handling, never results.
    ///
    /// Every [`CampaignPart`] records its producing spec's fingerprint,
    /// and [`CampaignMatrix::merge`] refuses to combine parts whose
    /// fingerprints differ: shards are only meaningful relative to one
    /// exact task order, and that order is a function of these contents.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv1a(b"campaign-spec\0", FNV_OFFSET);
        for at in &self.attacks {
            h = fnv1a(at.info().name.as_bytes(), h);
            h = fnv1a(b"\0", h);
        }
        h = fnv1a(b"\x01", h);
        for d in &self.defenses {
            h = fnv1a(d.name().as_bytes(), h);
            h = fnv1a(b"\0", h);
            h = fnv1a(d.strategy_token().as_bytes(), h);
            h = fnv1a(b"\0", h);
        }
        h = fnv1a(b"\x01", h);
        for nc in &self.configs {
            h = fnv1a(nc.name.as_bytes(), h);
            h = fnv1a(b"\0", h);
            h = fnv1a(&config_digest(&nc.config).to_le_bytes(), h);
        }
        h
    }

    /// Splits the cube into `n` independently runnable shards covering
    /// contiguous, balanced ranges of the deterministic task order.
    /// `CampaignMatrix::merge` over all the parts reproduces
    /// [`CampaignMatrix::run`] bit for bit. `n = 0` is treated as 1.
    #[must_use]
    pub fn shards(&self, n: usize) -> Vec<CampaignShard> {
        let n = n.max(1);
        let total = self.total_tasks();
        (0..n)
            .map(|i| CampaignShard {
                index: i,
                of: n,
                start: i * total / n,
                end: (i + 1) * total / n,
                spec: self.clone(),
            })
            .collect()
    }
}

/// Builder for [`CampaignSpec`]: registries by default, restrictable
/// attack/defense axes, and a cartesian configuration grid over typed
/// [`Knob`] axes.
#[derive(Debug)]
pub struct CampaignSpecBuilder {
    base: UarchConfig,
    attacks: Vec<&'static dyn Attack>,
    defenses: Vec<DefenseStack>,
    axes: Vec<(Knob, Vec<KnobValue>)>,
    threads: usize,
}

impl CampaignSpecBuilder {
    /// Replaces the attack axis (defaults to the full registry).
    #[must_use]
    pub fn attacks(mut self, attacks: impl IntoIterator<Item = &'static dyn Attack>) -> Self {
        self.attacks = attacks.into_iter().collect();
        self
    }

    /// Replaces the defense axis with *singleton* stacks, one per given
    /// defense (the classic one-defense-per-column sweep); pass `[]` for
    /// baseline-only campaigns (Tables I and III). For bundles, use
    /// [`defense_stacks`](Self::defense_stacks).
    #[must_use]
    pub fn defenses(mut self, defenses: impl IntoIterator<Item = Defense>) -> Self {
        self.defenses = defenses.into_iter().map(DefenseStack::single).collect();
        self
    }

    /// Replaces the defense axis with explicit [`DefenseStack`]s —
    /// curated bundles ([`defenses::presets`]), parsed
    /// `"kpti+retpoline"` expressions, and singletons can mix freely:
    ///
    /// ```
    /// use specgraph::campaign::CampaignSpec;
    /// use specgraph::defenses::{presets, DefenseStack};
    /// use uarch::UarchConfig;
    ///
    /// let spec = CampaignSpec::builder(UarchConfig::default())
    ///     .defense_stacks([
    ///         presets::linux_default(),
    ///         DefenseStack::parse("stt").unwrap(),
    ///     ])
    ///     .build();
    /// assert_eq!(spec.defenses.len(), 2);
    /// ```
    #[must_use]
    pub fn defense_stacks(mut self, stacks: impl IntoIterator<Item = DefenseStack>) -> Self {
        self.defenses = stacks.into_iter().collect();
        self
    }

    /// Sets the worker-thread count (`0` = all available parallelism).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Declares a configuration axis: the grid sweeps `knob` over
    /// `values`. Axes multiply — each `axis` call multiplies the config
    /// count by `values.len()`, first-declared axis varying slowest.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains a duplicate (the duplicate
    /// slices would share one name and fingerprint), `knob` was already
    /// declared, or the
    /// grid would combine a [`Knob::Predictor`] axis with a
    /// [`Hardening::FlushPredictors`] value — the predictor axis pins the
    /// very flag that hardening sets, so such a slice would not be the
    /// machine its name claims.
    #[must_use]
    pub fn axis<V: Into<KnobValue>>(
        mut self,
        knob: Knob,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        let values: Vec<KnobValue> = values.into_iter().map(Into::into).collect();
        assert!(!values.is_empty(), "axis {knob:?} needs at least one value");
        for (i, v) in values.iter().enumerate() {
            assert!(
                !values[..i].contains(v),
                "axis {knob:?} lists value {v:?} twice — the duplicate slices \
                 would share one name and one fingerprint"
            );
        }
        assert!(
            self.axes.iter().all(|(k, _)| *k != knob),
            "axis {knob:?} declared twice"
        );
        self.axes.push((knob, values));
        let has_predictor = self.axes.iter().any(|(k, _)| *k == Knob::Predictor);
        let has_flush_hardening = self
            .axes
            .iter()
            .any(|(_, vs)| vs.contains(&KnobValue::Hardening(Hardening::FlushPredictors)));
        assert!(
            !(has_predictor && has_flush_hardening),
            "Knob::Predictor pins the predictor flags and would silently \
             override Hardening::FlushPredictors; drop one of the two axes \
             (PredictorFlavor::FlushOnSwitch covers the ④ slice)"
        );
        self
    }

    /// Expands the declared axes into the full cartesian configuration
    /// grid and finishes the spec.
    ///
    /// # Panics
    ///
    /// Panics if an axis value does not fit its knob (e.g. a numeric
    /// value on [`Knob::Predictor`]).
    #[must_use]
    pub fn build(self) -> CampaignSpec {
        let configs = if self.axes.is_empty() {
            vec![NamedConfig::new("baseline", self.base.clone())]
        } else {
            let count: usize = self.axes.iter().map(|(_, v)| v.len()).product();
            (0..count)
                .map(|index| {
                    // Mixed-radix decode of the grid index: first axis is
                    // the most significant digit (varies slowest).
                    let mut rest = index;
                    let mut positions = vec![0usize; self.axes.len()];
                    for (pos, (_, values)) in positions.iter_mut().zip(&self.axes).rev() {
                        *pos = rest % values.len();
                        rest /= values.len();
                    }
                    let mut cfg = self.base.clone();
                    let mut parts = Vec::with_capacity(self.axes.len());
                    for (pos, (knob, values)) in positions.iter().zip(&self.axes) {
                        let value = values[*pos];
                        knob.apply(&mut cfg, value);
                        parts.push(knob.label(value));
                    }
                    NamedConfig::new(parts.join(" "), cfg)
                })
                .collect()
        };
        CampaignSpec {
            attacks: self.attacks,
            defenses: self.defenses,
            configs,
            threads: self.threads,
            resilience: Resilience::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A stable 64-bit digest of a machine configuration's *contents* (every
/// field, in declaration order).
///
/// Hashing the canonical `Debug` rendering covers all knobs, so any
/// change — a grid-axis value or a base-field tweak — changes the digest;
/// adding a field to `UarchConfig` deliberately invalidates every stored
/// fingerprint (the conservative direction for incremental re-evaluation).
#[must_use]
pub fn config_digest(cfg: &UarchConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes(), FNV_OFFSET)
}

pub(crate) fn baseline_fingerprint(attack: &str, digest: u64) -> u64 {
    let h = fnv1a(b"baseline\0", FNV_OFFSET);
    let h = fnv1a(attack.as_bytes(), h);
    fnv1a(&digest.to_le_bytes(), fnv1a(b"\0", h))
}

/// The cell fingerprint hashes the stack's display name and joined
/// strategy token, so a singleton stack's fingerprint equals the
/// pre-stack (schema v3) single-defense fingerprint — saved matrices keep
/// feeding incremental runs across the schema bump.
pub(crate) fn cell_fingerprint(
    attack: &str,
    defense: &str,
    strategy_token: &str,
    digest: u64,
) -> u64 {
    let h = fnv1a(b"cell\0", FNV_OFFSET);
    let h = fnv1a(attack.as_bytes(), h);
    let h = fnv1a(defense.as_bytes(), fnv1a(b"\0", h));
    let h = fnv1a(strategy_token.as_bytes(), fnv1a(b"\0", h));
    fnv1a(&digest.to_le_bytes(), fnv1a(b"\0", h))
}

// ---------------------------------------------------------------------------
// Cells
// ---------------------------------------------------------------------------

/// One attack run with *no* defense on one configuration: the leak ground
/// truth (Table I/III rows), plus the Theorem-1 graph verdict.
#[derive(Debug, Clone)]
pub struct BaselineCell {
    /// Catalog metadata of the attack.
    pub info: AttackInfo,
    /// Index into [`CampaignMatrix::configs`].
    pub config: usize,
    /// Whether the attack recovered the planted secret.
    pub leaked: bool,
    /// The recovered symbol, if any.
    pub recovered: Option<u64>,
    /// Cycles the run consumed.
    pub cycles: u64,
    /// Theorem 1 on the variant's attack graph: does an authorization
    /// race with a secret access? (Answered from the graph's cached
    /// reachability index.)
    pub graph_race: bool,
    /// Content fingerprint (attack name + config contents) keying
    /// incremental reuse.
    pub fingerprint: u64,
    /// How the simulation concluded. Degraded outcomes zero the machine
    /// fields (`leaked`/`recovered`/`cycles`) but keep `graph_race`.
    pub outcome: CellOutcome,
}

/// One (attack, defense stack, configuration) evaluation.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Attack name (row).
    pub attack: &'static str,
    /// Defense-stack display name (column): a defense name for singleton
    /// stacks, members joined with `+` for bundles.
    pub defense: String,
    /// Index into [`CampaignMatrix::configs`] (slice).
    pub config: usize,
    /// The two-level verdict for the cell (carries the full
    /// [`DefenseStack`]).
    pub evaluation: Evaluation,
    /// Content fingerprint (attack + stack name/strategies + config
    /// contents) keying incremental reuse.
    pub fingerprint: u64,
    /// How the simulation concluded. Degraded outcomes report the
    /// mechanism as [`Verdict::GraphOnly`] but keep the (config-invariant)
    /// `strategy_sufficient` graph verdict.
    pub outcome: CellOutcome,
}

impl MatrixCell {
    /// The §V-B "false sense of security" pattern for this cell.
    #[must_use]
    pub fn false_sense_of_security(&self) -> bool {
        self.evaluation.false_sense_of_security()
    }

    /// The token written to the CSV/JSON mechanism column: the verdict
    /// token for completed cells, `"quarantined"`/`"timed_out"` for
    /// degraded ones.
    #[must_use]
    pub fn mechanism_token(&self) -> &'static str {
        match self.outcome {
            CellOutcome::Ok => verdict_token(self.evaluation.mechanism),
            CellOutcome::TimedOut { .. } => "timed_out",
            CellOutcome::Quarantined { .. } => "quarantined",
        }
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

enum TaskOut {
    Base(BaselineCell),
    Cell(MatrixCell),
}

/// Every graph-level verdict a run needs, hoisted out of the config loop.
///
/// Both kinds of graph verdict — the baseline Theorem-1 race and a
/// stack's strategy sufficiency — depend only on the attack's graph and
/// the stack's strategies, never on the machine configuration. A knob
/// grid therefore needs `A + A×S` graph verdicts, not `A×C + A×S×C`:
/// they are computed here once, per (attack) and per (attack, stack)
/// pair, and shared across every config slice (the workers then only
/// simulate).
struct GraphVerdicts {
    /// Per attack: does an authorization race with a secret access?
    /// Positions never requested stay `false`.
    races: Vec<bool>,
    /// Per `(attack, stack)` pair (`attack_index * defenses + defense_index`):
    /// the hoisted `strategy_sufficient` verdict. `None` for pairs no
    /// requested task needs.
    pairs: Vec<Option<Option<bool>>>,
    /// How many (attack, stack) strategy verdicts were actually computed
    /// — exactly the number of needed pairs, surfaced as
    /// [`IncrementalReport::graph_verdicts`] so tests can pin the A×S
    /// (not A×S×C) bound.
    evaluated: usize,
}

/// Computes the graph verdicts the task list `ids` needs: baseline races
/// for attacks with baseline tasks (or all attacks when `races_for_all` —
/// the matrix path stamps races onto *reused* baselines too), and one
/// strategy-sufficiency verdict per (attack, stack) pair with at least
/// one cell task. One [`defenses::PatchSession`] per attack serves all of
/// its stacks: the graph is built and indexed once, and every stack's
/// strategy edges are applied and rolled back incrementally.
fn graph_verdicts_for(
    spec: &CampaignSpec,
    ids: &[usize],
    races_for_all: bool,
) -> Result<GraphVerdicts, AttackError> {
    let (a, d, c) = (spec.attacks.len(), spec.defenses.len(), spec.configs.len());
    let base_tasks = a * c;
    let mut race_needed = vec![races_for_all; a];
    let mut pair_needed = vec![false; a * d];
    for &task in ids {
        if task < base_tasks {
            race_needed[task / c] = true;
        } else {
            pair_needed[task_pair(spec, task)] = true;
        }
    }
    let mut races = vec![false; a];
    let mut pairs: Vec<Option<Option<bool>>> = vec![None; a * d];
    let mut evaluated = 0usize;
    for (ai, attack) in spec.attacks.iter().enumerate() {
        let wants_pairs = pair_needed[ai * d..(ai + 1) * d].iter().any(|&n| n);
        if !race_needed[ai] && !wants_pairs {
            continue;
        }
        let mut session = defenses::PatchSession::new(*attack);
        if race_needed[ai] {
            races[ai] = session.graph_race();
        }
        for (di, defense) in spec.defenses.iter().enumerate() {
            if pair_needed[ai * d + di] {
                pairs[ai * d + di] = Some(session.graph_sufficient(defense)?);
                evaluated += 1;
            }
        }
    }
    Ok(GraphVerdicts {
        races,
        pairs,
        evaluated,
    })
}

fn run_task(
    spec: &CampaignSpec,
    graph: &GraphVerdicts,
    digests: &[u64],
    task: usize,
    runner: &mut BatchRunner,
) -> Result<TaskOut, AttackError> {
    let c = spec.configs.len();
    let d = spec.defenses.len();
    let base_tasks = spec.attacks.len() * c;
    if task < base_tasks {
        let attack = spec.attacks[task / c];
        let config = task % c;
        let out = runner.run(attack, &spec.configs[config].config)?;
        let info = attack.info();
        Ok(TaskOut::Base(BaselineCell {
            config,
            leaked: out.leaked,
            recovered: out.recovered,
            cycles: out.cycles,
            graph_race: graph.races[task / c],
            fingerprint: baseline_fingerprint(info.name, digests[config]),
            info,
            outcome: CellOutcome::Ok,
        }))
    } else {
        let j = task - base_tasks;
        let attack = spec.attacks[j / (d * c)];
        let defense = &spec.defenses[(j / c) % d];
        let config = j % c;
        // The graph verdict was hoisted out of the config loop (it is
        // config-invariant); only the machine runs per slice.
        let strategy_sufficient =
            graph.pairs[task_pair(spec, task)].expect("pair verdict precomputed");
        let mechanism =
            defenses::verify_stack_warm(defense, attack, &spec.configs[config].config, runner)?;
        let evaluation = Evaluation {
            attack: attack.info().name,
            stack: defense.clone(),
            strategy_sufficient,
            mechanism,
        };
        let fingerprint = cell_fingerprint(
            evaluation.attack,
            defense.name(),
            &defense.strategy_token(),
            digests[config],
        );
        Ok(TaskOut::Cell(MatrixCell {
            attack: evaluation.attack,
            defense: defense.name().to_owned(),
            config,
            evaluation,
            fingerprint,
            outcome: CellOutcome::Ok,
        }))
    }
}

/// Builds the degraded row for a task whose simulation could not complete:
/// machine fields are zeroed, the mechanism is [`Verdict::GraphOnly`], and
/// the hoisted graph verdicts (`graph_race`, `strategy_sufficient`) are
/// kept — they never needed the machine. Fingerprints are computed as
/// usual so an incremental re-run recognises (and, because degraded rows
/// are never reused, re-evaluates) the cell.
fn degraded_task(
    spec: &CampaignSpec,
    graph: &GraphVerdicts,
    digests: &[u64],
    task: usize,
    outcome: CellOutcome,
) -> TaskOut {
    let c = spec.configs.len();
    let d = spec.defenses.len();
    let base_tasks = spec.attacks.len() * c;
    if task < base_tasks {
        let attack = spec.attacks[task / c];
        let config = task % c;
        let info = attack.info();
        TaskOut::Base(BaselineCell {
            fingerprint: baseline_fingerprint(info.name, digests[config]),
            info,
            config,
            leaked: false,
            recovered: None,
            cycles: 0,
            graph_race: graph.races[task / c],
            outcome,
        })
    } else {
        let j = task - base_tasks;
        let attack = spec.attacks[j / (d * c)];
        let defense = &spec.defenses[(j / c) % d];
        let config = j % c;
        let strategy_sufficient =
            graph.pairs[task_pair(spec, task)].expect("pair verdict precomputed");
        let evaluation = Evaluation {
            attack: attack.info().name,
            stack: defense.clone(),
            strategy_sufficient,
            mechanism: Verdict::GraphOnly,
        };
        let fingerprint = cell_fingerprint(
            evaluation.attack,
            defense.name(),
            &defense.strategy_token(),
            digests[config],
        );
        TaskOut::Cell(MatrixCell {
            attack: evaluation.attack,
            defense: defense.name().to_owned(),
            config,
            evaluation,
            fingerprint,
            outcome,
        })
    }
}

/// Renders a panic payload into a quarantine reason, truncated so a
/// pathological payload cannot bloat the matrix document.
fn panic_reason(payload: &dyn std::any::Any) -> String {
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("worker panicked (non-string payload)");
    const MAX: usize = 200;
    let mut reason = String::with_capacity(msg.len().min(MAX));
    reason.extend(msg.chars().take(MAX));
    reason
}

/// [`run_task`] hardened by the spec's [`Resilience`] policy: panics are
/// caught and retried with backoff on a fresh machine (the old one may be
/// poisoned mid-simulation), then quarantined; cycle-budget exhaustion
/// degrades to [`CellOutcome::TimedOut`] when the watchdog is enabled.
/// Non-timeout simulator errors keep their existing fail-the-run
/// semantics — they indicate a broken spec, not a flaky worker.
fn run_task_resilient(
    spec: &CampaignSpec,
    graph: &GraphVerdicts,
    digests: &[u64],
    task: usize,
    runner: &mut BatchRunner,
) -> Result<TaskOut, AttackError> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let policy = &spec.resilience;
    let mut attempt = 0u32;
    loop {
        match catch_unwind(AssertUnwindSafe(|| {
            run_task(spec, graph, digests, task, runner)
        })) {
            Ok(Ok(out)) => return Ok(out),
            Ok(Err(AttackError::Uarch(e))) if e.is_cycle_limit() && policy.degrade_timeouts => {
                let uarch::UarchError::CycleLimitExceeded { limit } = e else {
                    unreachable!("is_cycle_limit");
                };
                return Ok(degraded_task(
                    spec,
                    graph,
                    digests,
                    task,
                    CellOutcome::TimedOut { limit },
                ));
            }
            Ok(Err(e)) => return Err(e),
            Err(payload) => {
                *runner = BatchRunner::new();
                if attempt >= policy.retries {
                    return Ok(degraded_task(
                        spec,
                        graph,
                        digests,
                        task,
                        CellOutcome::Quarantined {
                            reason: panic_reason(payload.as_ref()),
                        },
                    ));
                }
                attempt += 1;
                if !policy.backoff.is_zero() {
                    thread::sleep(policy.backoff * attempt);
                }
            }
        }
    }
}

fn effective_threads(requested: usize, tasks: usize) -> usize {
    match requested {
        0 => thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        t => t,
    }
    .min(tasks.max(1))
}

/// One completed evaluation task, as reported to a [`ProgressObserver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskEvent {
    /// Tasks completed so far in this run, including this one. Completion
    /// order is scheduling-dependent; the counter is monotonic.
    pub completed: usize,
    /// Tasks this run evaluates in total (stale tasks only, for an
    /// incremental run).
    pub total: usize,
    /// Config-slice index (into [`CampaignSpec::configs`]) of the
    /// completed task.
    pub config: usize,
}

/// Live progress callback for campaign runs: invoked once per evaluated
/// task, possibly concurrently from worker threads (hence `Sync`). Reused
/// (fingerprint-matched) tasks are never reported — they cost nothing.
pub type ProgressObserver<'a> = &'a (dyn Fn(TaskEvent) + Sync);

/// The config-slice index of a task id (baseline or cell region).
fn task_config(spec: &CampaignSpec, task: usize) -> usize {
    let c = spec.configs.len();
    let base_tasks = spec.attacks.len() * c;
    if task < base_tasks {
        task % c
    } else {
        (task - base_tasks) % c
    }
}

/// The `(attack, stack)` pair index (`attack_index * defenses +
/// defense_index`) of a *cell-region* task id — the key into
/// [`GraphVerdicts::pairs`], shared by the precompute and the workers so
/// the two decodes cannot drift.
///
/// Callers guarantee `task` lies in the cell region (`task >= A×C`).
fn task_pair(spec: &CampaignSpec, task: usize) -> usize {
    let (d, c) = (spec.defenses.len(), spec.configs.len());
    let j = task - spec.attacks.len() * c;
    (j / (d * c)) * d + (j / c) % d
}

/// Runs the given task ids (need not be contiguous, must be sorted for the
/// error-order guarantee) on scoped workers, round-robin by list position;
/// results come back in list order. The first error by task order wins.
/// `progress`, if given, observes every completed task as it finishes.
fn execute(
    spec: &CampaignSpec,
    graph: &GraphVerdicts,
    digests: &[u64],
    ids: &[usize],
    progress: Option<ProgressObserver<'_>>,
) -> Result<Vec<TaskOut>, AttackError> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let threads = effective_threads(spec.threads, ids.len());
    let done = AtomicUsize::new(0);
    let observe = |task: usize| {
        if let Some(f) = progress {
            f(TaskEvent {
                completed: done.fetch_add(1, Ordering::Relaxed) + 1,
                total: ids.len(),
                config: task_config(spec, task),
            });
        }
    };
    let mut slots: Vec<Option<Result<TaskOut, AttackError>>> = Vec::new();
    slots.resize_with(ids.len(), || None);
    if threads <= 1 {
        let mut runner = BatchRunner::new();
        for (k, slot) in slots.iter_mut().enumerate() {
            *slot = Some(run_task_resilient(
                spec,
                graph,
                digests,
                ids[k],
                &mut runner,
            ));
            observe(ids[k]);
        }
    } else {
        let observe = &observe;
        // Each worker owns one warm machine for its whole task stripe:
        // every task resets it instead of rebuilding.
        let worker = move |start: usize| {
            let mut runner = BatchRunner::new();
            let mut out = Vec::new();
            let mut k = start;
            while k < ids.len() {
                out.push((
                    k,
                    run_task_resilient(spec, graph, digests, ids[k], &mut runner),
                ));
                observe(ids[k]);
                k += threads;
            }
            out
        };
        let batches = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|start| scope.spawn(move || worker(start)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("campaign worker panicked"))
                .collect::<Vec<_>>()
        });
        for batch in batches {
            for (k, result) in batch {
                slots[k] = Some(result);
            }
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every task ran"))
        .collect()
}

fn split_outputs(outs: Vec<TaskOut>) -> (Vec<BaselineCell>, Vec<MatrixCell>) {
    let mut baselines = Vec::new();
    let mut cells = Vec::new();
    for out in outs {
        match out {
            TaskOut::Base(b) => baselines.push(b),
            TaskOut::Cell(cell) => cells.push(cell),
        }
    }
    (baselines, cells)
}

// ---------------------------------------------------------------------------
// Shards
// ---------------------------------------------------------------------------

/// One independently runnable slice of a campaign cube — a contiguous
/// range of the deterministic task order. Produced by
/// [`CampaignSpec::shards`].
#[derive(Debug, Clone)]
pub struct CampaignShard {
    index: usize,
    of: usize,
    start: usize,
    end: usize,
    spec: CampaignSpec,
}

impl CampaignShard {
    /// This shard's position in `0..of`.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// How many shards the cube was split into.
    #[must_use]
    pub fn of(&self) -> usize {
        self.of
    }

    /// Number of tasks this shard evaluates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the shard has no tasks (more shards than tasks).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Evaluates this shard's task range (in parallel, like
    /// [`CampaignMatrix::run`]) and returns the partial result for
    /// [`CampaignMatrix::merge`].
    ///
    /// # Errors
    ///
    /// The first [`AttackError`] any simulation produced (by task order).
    pub fn run(&self) -> Result<CampaignPart, AttackError> {
        self.run_observed(None)
    }

    /// [`CampaignShard::run`] with a live [`ProgressObserver`] reporting
    /// each completed task.
    ///
    /// # Errors
    ///
    /// The first [`AttackError`] any simulation produced (by task order).
    pub fn run_observed(
        &self,
        progress: Option<ProgressObserver<'_>>,
    ) -> Result<CampaignPart, AttackError> {
        let digests: Vec<u64> = self
            .spec
            .configs
            .iter()
            .map(|nc| config_digest(&nc.config))
            .collect();
        let ids: Vec<usize> = (self.start..self.end).collect();
        // Graph verdicts only for this shard's attacks and (attack, stack)
        // pairs — a shard whose range misses an attack builds no graph
        // for it; pairs are computed once and shared across the shard's
        // config slices.
        let graph = graph_verdicts_for(&self.spec, &ids, false)?;
        let (baselines, cells) =
            split_outputs(execute(&self.spec, &graph, &digests, &ids, progress)?);
        Ok(CampaignPart {
            spec_fingerprint: self.spec.fingerprint(),
            index: self.index,
            of: self.of,
            start: self.start,
            end: self.end,
            total: self.spec.total_tasks(),
            attacks: self.spec.attacks.iter().map(|at| at.info()).collect(),
            defenses: self.spec.defenses.clone(),
            configs: self.spec.configs.iter().map(|nc| nc.name.clone()).collect(),
            baselines,
            cells,
        })
    }
}

/// The evaluated output of one [`CampaignShard`]: a shard header (spec
/// fingerprint plus the shard's slot in the task range), the axis
/// metadata, and the cells of its task range, in task order.
///
/// A part is the unit of **cross-process** shard transport: it
/// serializes to JSON ([`CampaignPart::save_json`], schema version
/// [`SCHEMA_VERSION`] with `"kind": "campaign-part"`), so each shard can
/// run in its own process — or on its own machine — and a final process
/// can [`CampaignPart::load_json`] every part and
/// [`CampaignMatrix::merge`] them bit-identically to a single-shot run.
#[derive(Debug, Clone)]
pub struct CampaignPart {
    spec_fingerprint: u64,
    index: usize,
    of: usize,
    start: usize,
    end: usize,
    total: usize,
    attacks: Vec<AttackInfo>,
    defenses: Vec<DefenseStack>,
    configs: Vec<String>,
    baselines: Vec<BaselineCell>,
    cells: Vec<MatrixCell>,
}

impl CampaignPart {
    /// This part's shard position.
    #[must_use]
    pub fn index(&self) -> usize {
        self.index
    }

    /// How many shards the cube was split into.
    #[must_use]
    pub fn of(&self) -> usize {
        self.of
    }

    /// The [`CampaignSpec::fingerprint`] of the spec that produced this
    /// part. [`CampaignMatrix::merge`] only combines parts that agree.
    #[must_use]
    pub fn spec_fingerprint(&self) -> u64 {
        self.spec_fingerprint
    }

    /// First task index (inclusive) of this part's range.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last task index of this part's range.
    #[must_use]
    pub fn end(&self) -> usize {
        self.end
    }

    /// Number of tasks (baselines + cells) this part evaluated.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether this part's task range is empty (more shards than tasks).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The baseline rows this part evaluated.
    #[must_use]
    pub fn baselines(&self) -> &[BaselineCell] {
        &self.baselines
    }

    /// The matrix cells this part evaluated.
    #[must_use]
    pub fn cells(&self) -> &[MatrixCell] {
        &self.cells
    }

    /// The part as a JSON document: shard header first, then axes and
    /// rows. Round-trips through [`CampaignPart::from_json`].
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_json_kind("campaign-part")
    }

    /// The part as a **checkpoint** document (`"kind":
    /// "campaign-checkpoint"`, same row format): the unit the
    /// [`serve`](crate::serve) scheduler writes after each completed chunk
    /// so a killed run resumes without redoing the range. Round-trips
    /// through [`CampaignPart::from_checkpoint_json`]; the two kinds do
    /// not interchange, so a checkpoint directory can never be merged as
    /// if it were a complete part set by accident.
    #[must_use]
    pub fn to_checkpoint_json(&self) -> String {
        self.to_json_kind("campaign-checkpoint")
    }

    fn to_json_kind(&self, kind: &str) -> String {
        let mut out = String::from("{\n  \"version\": ");
        let _ = write!(out, "{SCHEMA_VERSION},\n  \"kind\": \"{kind}\",");
        let _ = write!(
            out,
            "\n  \"spec_fingerprint\": \"{:#018x}\",",
            self.spec_fingerprint
        );
        let _ = write!(
            out,
            "\n  \"shard\": {{\"index\": {}, \"of\": {}, \"start\": {}, \"end\": {}, \"total\": {}}},",
            self.index, self.of, self.start, self.end, self.total
        );
        out.push_str("\n  \"configs\": [");
        push_json_list(&mut out, self.configs.iter().map(String::as_str));
        out.push_str("],\n  \"attacks\": [");
        push_json_list(&mut out, self.attacks.iter().map(|i| i.name));
        out.push_str("],\n  \"defenses\": [");
        push_json_list(&mut out, self.defenses.iter().map(DefenseStack::name));
        out.push_str("],\n  \"baselines\": [");
        for (i, b) in self.baselines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_baseline_row(&mut out, b, &self.configs);
        }
        out.push_str("\n  ],\n  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_cell_row(&mut out, cell, &self.configs);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes [`CampaignPart::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error from writing the file.
    pub fn save_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        crate::fault::write_atomic(path, &self.to_json())
    }

    /// Writes [`CampaignPart::to_checkpoint_json`] to `path`, atomically
    /// (tmp + rename via [`crate::fault::write_atomic`]) so a crash never
    /// leaves a torn checkpoint behind.
    ///
    /// # Errors
    ///
    /// Any I/O error from writing the file.
    pub fn save_checkpoint_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        crate::fault::write_atomic(path, &self.to_checkpoint_json())
    }

    /// Reads a part saved with [`CampaignPart::save_json`].
    ///
    /// # Errors
    ///
    /// [`CampaignIoError`] on I/O failure, malformed JSON, a wrong
    /// version/kind, or names that no longer resolve in the registries.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self, CampaignIoError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }

    /// Reads a checkpoint saved with
    /// [`CampaignPart::save_checkpoint_json`].
    ///
    /// # Errors
    ///
    /// [`CampaignIoError`] on I/O failure, malformed or truncated JSON
    /// (a worker killed mid-write leaves a
    /// [`Truncated`](jsonio::JsonErrorKind::Truncated) prefix, which the
    /// scheduler treats as "chunk not done"), a wrong version/kind, or
    /// names that no longer resolve in the registries.
    pub fn load_checkpoint_json(path: impl AsRef<Path>) -> Result<Self, CampaignIoError> {
        Self::from_checkpoint_json(&std::fs::read_to_string(path)?)
    }

    /// Parses a part from its [`CampaignPart::to_json`] document.
    ///
    /// The shard header is validated for internal consistency (index
    /// within the shard count, task range within — and consistent with —
    /// the declared axes), and every row's names are checked against the
    /// task position it claims, exactly like
    /// [`CampaignMatrix::from_json`].
    ///
    /// # Errors
    ///
    /// [`CampaignIoError`] on malformed JSON, a wrong version or kind
    /// (e.g. a *matrix* document — parts and matrices do not
    /// interchange), unknown names/tokens, or an inconsistent header.
    pub fn from_json(text: &str) -> Result<Self, CampaignIoError> {
        Self::from_json_kind(text, "campaign-part")
    }

    /// Parses a checkpoint from its [`CampaignPart::to_checkpoint_json`]
    /// document. Identical validation to [`CampaignPart::from_json`],
    /// keyed on the `"campaign-checkpoint"` kind.
    ///
    /// # Errors
    ///
    /// [`CampaignIoError`] on malformed JSON, a wrong version or kind,
    /// unknown names/tokens, or an inconsistent header.
    pub fn from_checkpoint_json(text: &str) -> Result<Self, CampaignIoError> {
        Self::from_json_kind(text, "campaign-checkpoint")
    }

    fn from_json_kind(text: &str, kind: &'static str) -> Result<Self, CampaignIoError> {
        let doc = jsonio::parse(text)?;
        check_version_and_kind(&doc, kind, false)?;
        let spec_fingerprint = header_fingerprint(&doc)?;
        let shard = doc
            .get("shard")
            .ok_or_else(|| CampaignIoError::Parse("missing 'shard' header".to_owned()))?;
        let shard_field = |key: &str| -> Result<usize, CampaignIoError> {
            let n = shard
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| CampaignIoError::Parse(format!("missing shard field '{key}'")))?;
            usize::try_from(n)
                .map_err(|_| CampaignIoError::Parse(format!("shard field '{key}' out of range")))
        };
        let (index, of) = (shard_field("index")?, shard_field("of")?);
        let (start, end, total) = (
            shard_field("start")?,
            shard_field("end")?,
            shard_field("total")?,
        );
        if of == 0 || index >= of || start > end || end > total {
            return Err(CampaignIoError::Shape(format!(
                "inconsistent shard header: index {index} of {of}, tasks {start}..{end} of {total}"
            )));
        }
        let (attacks, defenses, configs) = parse_axes(&doc)?;
        let (a, d, c) = (attacks.len(), defenses.len(), configs.len());
        if total != a * c + a * d * c {
            return Err(CampaignIoError::Shape(format!(
                "shard header declares {total} total tasks, axes imply {}",
                a * c + a * d * c
            )));
        }
        let (baselines, cells) = parse_rows(
            &attacks,
            &defenses,
            &configs,
            start,
            end,
            entries(&doc, "baselines")?,
            entries(&doc, "cells")?,
        )?;
        Ok(CampaignPart {
            spec_fingerprint,
            index,
            of,
            start,
            end,
            total,
            attacks,
            defenses,
            configs,
            baselines,
            cells,
        })
    }
}

/// Why [`CampaignMatrix::merge`] rejected a set of parts.
#[derive(Debug)]
#[non_exhaustive]
pub enum MergeError {
    /// No parts were given.
    Empty,
    /// The number of parts does not match their declared shard count.
    WrongCount {
        /// Shard count declared by the parts.
        expected: usize,
        /// Parts actually given.
        got: usize,
    },
    /// After sorting, a shard index is missing or duplicated.
    ShardIndex {
        /// The index expected at this position.
        expected: usize,
        /// The index found.
        got: usize,
    },
    /// A part was produced by a spec with a different
    /// [`CampaignSpec::fingerprint`] (different attacks, defenses, knob
    /// values, or base configuration — even when the axis *names* agree).
    SpecMismatch {
        /// Shard index of the offending part.
        index: usize,
        /// Fingerprint of the first part's spec.
        expected: u64,
        /// Fingerprint the offending part declares.
        got: u64,
    },
    /// A part's attack/defense/config axes differ from the first part's.
    AxisMismatch {
        /// Shard index of the offending part.
        index: usize,
    },
    /// The parts' task ranges do not tile the cube exactly.
    Coverage {
        /// Task index where contiguous coverage was expected.
        expected: usize,
        /// Task index actually found.
        got: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => f.write_str("no campaign parts to merge"),
            MergeError::WrongCount { expected, got } => {
                write!(f, "expected {expected} parts, got {got}")
            }
            MergeError::ShardIndex { expected, got } => {
                write!(f, "expected shard index {expected}, got {got}")
            }
            MergeError::SpecMismatch {
                index,
                expected,
                got,
            } => {
                write!(
                    f,
                    "shard {index} was produced by a different campaign spec \
                     (fingerprint {got:#018x}, expected {expected:#018x}); \
                     re-run every shard with identical attack/defense/axis \
                     settings before merging"
                )
            }
            MergeError::AxisMismatch { index } => {
                write!(f, "shard {index} was evaluated over different axes")
            }
            MergeError::Coverage { expected, got } => {
                write!(
                    f,
                    "parts do not tile the cube: expected task {expected}, got {got}"
                )
            }
        }
    }
}

impl Error for MergeError {}

// ---------------------------------------------------------------------------
// Matrix
// ---------------------------------------------------------------------------

/// The evaluated cube, in deterministic attack-major order.
#[derive(Debug, Clone)]
pub struct CampaignMatrix {
    /// Attack axis metadata, in evaluation order.
    pub attacks: Vec<AttackInfo>,
    /// Defense-stack axis, in evaluation order (singleton stacks for
    /// classic single-defense campaigns).
    pub defenses: Vec<DefenseStack>,
    /// Configuration axis names, in evaluation order.
    pub configs: Vec<String>,
    /// Undefended runs: `attacks.len() × configs.len()`, attack-major.
    baselines: Vec<BaselineCell>,
    /// Defense evaluations: `attacks.len() × defenses.len() ×
    /// configs.len()`, ordered `((a·D)+d)·C + c`.
    cells: Vec<MatrixCell>,
    /// Name → axis position, for O(1) [`CampaignMatrix::cell`] lookups.
    attack_index: HashMap<&'static str, usize>,
    /// Stack name → axis position, for O(1) [`CampaignMatrix::cell`]
    /// lookups.
    defense_index: HashMap<String, usize>,
}

/// How much work an incremental run actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalReport {
    /// Tasks (baselines + cells) that were re-simulated.
    pub evaluated: usize,
    /// Tasks reused from the previous matrix by fingerprint.
    pub reused: usize,
    /// Strategy-sufficiency graph verdicts computed for this run. Graph
    /// verdicts are config-invariant and hoisted out of the config loop,
    /// so a full run of an `A×S×C` cube computes exactly `A×S` of these
    /// (one per (attack, stack) pair), and an all-reused incremental run
    /// computes zero.
    pub graph_verdicts: usize,
}

impl CampaignMatrix {
    fn assemble(
        attacks: Vec<AttackInfo>,
        defenses: Vec<DefenseStack>,
        configs: Vec<String>,
        baselines: Vec<BaselineCell>,
        cells: Vec<MatrixCell>,
    ) -> Self {
        debug_assert_eq!(baselines.len(), attacks.len() * configs.len());
        debug_assert_eq!(cells.len(), attacks.len() * defenses.len() * configs.len());
        let attack_index = attacks
            .iter()
            .enumerate()
            .map(|(i, a)| (a.name, i))
            .collect();
        let defense_index = defenses
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name().to_owned(), i))
            .collect();
        CampaignMatrix {
            attacks,
            defenses,
            configs,
            baselines,
            cells,
            attack_index,
            defense_index,
        }
    }

    /// Evaluates the full cube described by `spec`.
    ///
    /// Tasks (one per baseline run, one per matrix cell) are dealt to
    /// scoped worker threads round-robin and reassembled by index, so the
    /// result — including cell order — is independent of scheduling.
    ///
    /// # Errors
    ///
    /// The first [`AttackError`] any simulation produced (by task order).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panics (i.e. a bug, not a
    /// simulation failure).
    pub fn run(spec: &CampaignSpec) -> Result<Self, AttackError> {
        Ok(Self::run_incremental(spec, None)?.0)
    }

    /// Evaluates the cube, reusing every cell of `prev` whose content
    /// fingerprint (attack name + defense name/strategy + config
    /// contents) matches a cell of the new spec; only stale cells are
    /// re-simulated. With an unchanged spec this evaluates **zero** cells;
    /// changing one knob value re-evaluates exactly the affected config
    /// slices. `prev` typically comes from [`CampaignMatrix::load_json`].
    ///
    /// Fingerprints cover the *spec*, not the simulator implementation:
    /// discard saved matrices when the simulator or an attack PoC changes.
    ///
    /// # Errors
    ///
    /// The first [`AttackError`] any re-simulation produced (by task
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panics.
    pub fn run_incremental(
        spec: &CampaignSpec,
        prev: Option<&CampaignMatrix>,
    ) -> Result<(Self, IncrementalReport), AttackError> {
        Self::run_incremental_observed(spec, prev, None)
    }

    /// [`CampaignMatrix::run_incremental`] with a live
    /// [`ProgressObserver`]: the observer sees every *evaluated* task as
    /// it completes (reused tasks are silent — they cost nothing).
    ///
    /// # Errors
    ///
    /// The first [`AttackError`] any re-simulation produced (by task
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panics.
    pub fn run_incremental_observed(
        spec: &CampaignSpec,
        prev: Option<&CampaignMatrix>,
        progress: Option<ProgressObserver<'_>>,
    ) -> Result<(Self, IncrementalReport), AttackError> {
        let (a, d, c) = (spec.attacks.len(), spec.defenses.len(), spec.configs.len());
        let total = a * c + a * d * c;
        let digests: Vec<u64> = spec
            .configs
            .iter()
            .map(|nc| config_digest(&nc.config))
            .collect();

        let mut prev_bases: HashMap<u64, &BaselineCell> = HashMap::new();
        let mut prev_cells: HashMap<u64, &MatrixCell> = HashMap::new();
        if let Some(p) = prev {
            // Degraded rows (quarantined / timed-out) are deliberately not
            // reusable: a re-run with the fault gone must re-evaluate and
            // heal them.
            for b in p.baselines.iter().filter(|b| b.outcome.is_ok()) {
                prev_bases.insert(b.fingerprint, b);
            }
            for cell in p.cells.iter().filter(|cell| cell.outcome.is_ok()) {
                prev_cells.insert(cell.fingerprint, cell);
            }
        }

        let mut slots: Vec<Option<TaskOut>> = Vec::with_capacity(total);
        let mut stale: Vec<usize> = Vec::new();
        for task in 0..total {
            let reused = if task < a * c {
                let name = spec.attacks[task / c].info().name;
                let config = task % c;
                prev_bases
                    .get(&baseline_fingerprint(name, digests[config]))
                    .map(|b| {
                        TaskOut::Base(BaselineCell {
                            config,
                            ..(*b).clone()
                        })
                    })
            } else {
                let j = task - a * c;
                let name = spec.attacks[j / (d * c)].info().name;
                let defense = &spec.defenses[(j / c) % d];
                let config = j % c;
                prev_cells
                    .get(&cell_fingerprint(
                        name,
                        defense.name(),
                        &defense.strategy_token(),
                        digests[config],
                    ))
                    .map(|cell| {
                        TaskOut::Cell(MatrixCell {
                            config,
                            ..(*cell).clone()
                        })
                    })
            };
            if reused.is_none() {
                stale.push(task);
            }
            slots.push(reused);
        }

        // Graph verdicts, hoisted: strategy sufficiency only for the
        // (attack, stack) pairs with stale cells, Theorem-1 races for
        // *every* attack — races are recomputed live (cheap) and stamped
        // onto reused baselines below, so a changed graph() never serves
        // a stale verdict even when the simulation itself is reused.
        let graph = graph_verdicts_for(spec, &stale, true)?;
        for (task, slot) in slots.iter_mut().enumerate() {
            if let Some(TaskOut::Base(b)) = slot {
                b.graph_race = graph.races[task / c];
            }
        }

        let fresh = execute(spec, &graph, &digests, &stale, progress)?;
        for (&task, out) in stale.iter().zip(fresh) {
            slots[task] = Some(out);
        }
        let (baselines, cells) = split_outputs(
            slots
                .into_iter()
                .map(|s| s.expect("every task filled"))
                .collect(),
        );
        let report = IncrementalReport {
            evaluated: stale.len(),
            reused: total - stale.len(),
            graph_verdicts: graph.evaluated,
        };
        Ok((
            Self::assemble(
                spec.attacks.iter().map(|at| at.info()).collect(),
                spec.defenses.clone(),
                spec.configs.iter().map(|nc| nc.name.clone()).collect(),
                baselines,
                cells,
            ),
            report,
        ))
    }

    /// Runs the cube as `n` shards (sequentially, each internally
    /// parallel) and merges — a self-test of the shard path and a
    /// convenience for memory-bounded hosts.
    ///
    /// # Errors
    ///
    /// The first [`AttackError`] any simulation produced.
    ///
    /// # Panics
    ///
    /// Panics if self-produced shards fail to merge (a bug).
    pub fn run_sharded(spec: &CampaignSpec, n: usize) -> Result<Self, AttackError> {
        let parts = spec
            .shards(n)
            .iter()
            .map(CampaignShard::run)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self::merge(parts).expect("self-produced shards always merge"))
    }

    /// Reassembles a full matrix from every shard's [`CampaignPart`].
    ///
    /// Because the cell order is index-addressed and deterministic, the
    /// merge is *validated concatenation*: parts are sorted by shard
    /// index, checked for identical axes and exact contiguous coverage of
    /// the task range, then concatenated. The result is bit-identical
    /// (CSV and JSON) to a single-shot [`CampaignMatrix::run`].
    ///
    /// # Errors
    ///
    /// [`MergeError`] if the parts are incomplete, overlapping, or were
    /// produced from different specs.
    pub fn merge(mut parts: Vec<CampaignPart>) -> Result<Self, MergeError> {
        if parts.is_empty() {
            return Err(MergeError::Empty);
        }
        parts.sort_by_key(|p| p.index);
        let of = parts[0].of;
        if parts.len() != of {
            return Err(MergeError::WrongCount {
                expected: of,
                got: parts.len(),
            });
        }
        for (i, p) in parts.iter().enumerate() {
            if p.index != i || p.of != of {
                return Err(MergeError::ShardIndex {
                    expected: i,
                    got: p.index,
                });
            }
            let first = &parts[0];
            if p.spec_fingerprint != first.spec_fingerprint {
                return Err(MergeError::SpecMismatch {
                    index: p.index,
                    expected: first.spec_fingerprint,
                    got: p.spec_fingerprint,
                });
            }
            let same_axes = p.attacks == first.attacks
                && p.configs == first.configs
                && p.total == first.total
                && p.defenses == first.defenses;
            if !same_axes {
                return Err(MergeError::AxisMismatch { index: p.index });
            }
        }
        let mut next = 0;
        for p in &parts {
            if p.start != next {
                return Err(MergeError::Coverage {
                    expected: next,
                    got: p.start,
                });
            }
            next = p.end;
        }
        if next != parts[0].total {
            return Err(MergeError::Coverage {
                expected: parts[0].total,
                got: next,
            });
        }
        let attacks = parts[0].attacks.clone();
        let defenses = parts[0].defenses.clone();
        let configs = parts[0].configs.clone();
        let mut baselines = Vec::new();
        let mut cells = Vec::new();
        for p in parts {
            baselines.extend(p.baselines);
            cells.extend(p.cells);
        }
        Ok(Self::assemble(attacks, defenses, configs, baselines, cells))
    }

    /// `(attacks, defenses, configs)` axis lengths.
    #[must_use]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.attacks.len(), self.defenses.len(), self.configs.len())
    }

    /// All matrix cells in deterministic attack-major order.
    #[must_use]
    pub fn cells(&self) -> &[MatrixCell] {
        &self.cells
    }

    /// All undefended baseline runs, attack-major.
    #[must_use]
    pub fn baselines(&self) -> &[BaselineCell] {
        &self.baselines
    }

    /// The cell for `(attack, defense)` under configuration index
    /// `config` — O(1): hash-map axis lookups plus index arithmetic into
    /// the attack-major cell layout.
    #[must_use]
    pub fn cell(&self, attack: &str, defense: &str, config: usize) -> Option<&MatrixCell> {
        let a = *self.attack_index.get(attack)?;
        let d = *self.defense_index.get(defense)?;
        if config >= self.configs.len() {
            return None;
        }
        self.cells
            .get((a * self.defenses.len() + d) * self.configs.len() + config)
    }

    /// The undefended run of `attack` under configuration index `config`
    /// — O(1), like [`CampaignMatrix::cell`].
    #[must_use]
    pub fn baseline(&self, attack: &str, config: usize) -> Option<&BaselineCell> {
        let a = *self.attack_index.get(attack)?;
        if config >= self.configs.len() {
            return None;
        }
        self.baselines.get(a * self.configs.len() + config)
    }

    /// The cells matching a predicate (e.g. one strategy, one verdict).
    pub fn filter(&self, pred: impl Fn(&MatrixCell) -> bool) -> Vec<&MatrixCell> {
        self.cells.iter().filter(|cell| pred(cell)).collect()
    }

    /// Every §V-B "false sense of security" cell: the strategy would close
    /// this attack's leak path, but the mechanism still leaked.
    #[must_use]
    pub fn false_senses(&self) -> Vec<&MatrixCell> {
        self.filter(MatrixCell::false_sense_of_security)
    }

    /// The matrix as CSV (`attack,defense,config,strategy,…`), one row per
    /// cell, deterministic order.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "attack,defense,config,strategy,strategy_sufficient,mechanism,false_sense\n",
        );
        for cell in &self.cells {
            let e = &cell.evaluation;
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                csv_field(cell.attack),
                csv_field(&cell.defense),
                csv_field(&self.configs[cell.config]),
                e.stack.strategy_token(),
                e.strategy_sufficient
                    .map_or("n/a", |b| if b { "yes" } else { "no" }),
                cell.mechanism_token(),
                cell.false_sense_of_security(),
            );
        }
        out
    }

    /// The matrix as a JSON document (axes, baselines, cells, and the
    /// per-cell fingerprints that key incremental re-evaluation).
    /// Round-trips through [`CampaignMatrix::from_json`].
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": ");
        let _ = write!(out, "{SCHEMA_VERSION},\n  \"kind\": \"campaign-matrix\",");
        out.push_str("\n  \"configs\": [");
        push_json_list(&mut out, self.configs.iter().map(String::as_str));
        out.push_str("],\n  \"attacks\": [");
        push_json_list(&mut out, self.attacks.iter().map(|i| i.name));
        out.push_str("],\n  \"defenses\": [");
        push_json_list(&mut out, self.defenses.iter().map(DefenseStack::name));
        out.push_str("],\n  \"baselines\": [");
        for (i, b) in self.baselines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_baseline_row(&mut out, b, &self.configs);
        }
        out.push_str("\n  ],\n  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_cell_row(&mut out, cell, &self.configs);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Writes [`CampaignMatrix::to_json`] to `path`, atomically (tmp +
    /// rename via [`crate::fault::write_atomic`]).
    ///
    /// # Errors
    ///
    /// Any I/O error from writing the file.
    pub fn save_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        crate::fault::write_atomic(path, &self.to_json())
    }

    /// How many rows (baselines + cells) were quarantined after exhausting
    /// panic retries.
    #[must_use]
    pub fn quarantined(&self) -> usize {
        self.baselines
            .iter()
            .filter(|b| matches!(b.outcome, CellOutcome::Quarantined { .. }))
            .count()
            + self
                .cells
                .iter()
                .filter(|cell| matches!(cell.outcome, CellOutcome::Quarantined { .. }))
                .count()
    }

    /// How many rows (baselines + cells) were degraded by the runaway-cell
    /// watchdog.
    #[must_use]
    pub fn timed_out(&self) -> usize {
        self.baselines
            .iter()
            .filter(|b| matches!(b.outcome, CellOutcome::TimedOut { .. }))
            .count()
            + self
                .cells
                .iter()
                .filter(|cell| matches!(cell.outcome, CellOutcome::TimedOut { .. }))
                .count()
    }

    /// Reads a matrix saved with [`CampaignMatrix::save_json`].
    ///
    /// # Errors
    ///
    /// [`CampaignIoError`] on I/O failure, malformed JSON, or names that
    /// no longer resolve in the attack/defense registries.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self, CampaignIoError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }

    /// Parses a matrix from its [`CampaignMatrix::to_json`] document.
    ///
    /// Attack and defense names are resolved against the live registries
    /// (the matrix stores `&'static` metadata); axis order and cell counts
    /// are validated against the attack-major layout. Version-2 documents
    /// (written before [`SCHEMA_VERSION`] introduced the `kind` header)
    /// load unchanged.
    ///
    /// # Errors
    ///
    /// [`CampaignIoError`] on malformed JSON, a wrong version or kind
    /// (e.g. a shard *part* document — merge parts first), unknown
    /// names/tokens, or a cell count that does not match the declared
    /// axes.
    pub fn from_json(text: &str) -> Result<Self, CampaignIoError> {
        let doc = jsonio::parse(text)?;
        check_version_and_kind(&doc, "campaign-matrix", true)?;
        let (attacks, defenses, configs) = parse_axes(&doc)?;
        let (a, d, c) = (attacks.len(), defenses.len(), configs.len());
        let total = a * c + a * d * c;
        let (baselines, cells) = parse_rows(
            &attacks,
            &defenses,
            &configs,
            0,
            total,
            entries(&doc, "baselines")?,
            entries(&doc, "cells")?,
        )?;
        Ok(Self::assemble(attacks, defenses, configs, baselines, cells))
    }
}

// ---------------------------------------------------------------------------
// Diff
// ---------------------------------------------------------------------------

/// One cell whose verdict changed between two matrices — the machine
/// verdict, the graph (strategy-sufficiency) verdict, or both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictFlip {
    /// Attack name.
    pub attack: String,
    /// Defense-stack name.
    pub defense: String,
    /// Config-slice name.
    pub config: String,
    /// Machine verdict in the older matrix.
    pub from: Verdict,
    /// Machine verdict in the newer matrix.
    pub to: Verdict,
    /// Graph sufficiency verdict in the older matrix.
    pub sufficient_from: Option<bool>,
    /// Graph sufficiency verdict in the newer matrix.
    pub sufficient_to: Option<bool>,
    /// Whether the cell was a §V-B false sense of security before.
    pub false_sense_from: bool,
    /// Whether it is one now.
    pub false_sense_to: bool,
}

impl fmt::Display for VerdictFlip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sufficiency = |s: Option<bool>| match s {
            Some(true) => "sufficient",
            Some(false) => "insufficient",
            None => "n/a",
        };
        write!(f, "{} vs {} @ {}:", self.defense, self.attack, self.config)?;
        if self.from != self.to {
            write!(
                f,
                " {} -> {}",
                verdict_token(self.from),
                verdict_token(self.to)
            )?;
        }
        if self.sufficient_from != self.sufficient_to {
            write!(
                f,
                " (strategy: {} -> {})",
                sufficiency(self.sufficient_from),
                sufficiency(self.sufficient_to)
            )?;
        }
        if self.false_sense_from != self.false_sense_to {
            write!(
                f,
                " (false sense: {} -> {})",
                self.false_sense_from, self.false_sense_to
            )?;
        }
        Ok(())
    }
}

/// One undefended baseline whose leak verdict changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineFlip {
    /// Attack name.
    pub attack: String,
    /// Config-slice name.
    pub config: String,
    /// Whether the attack leaked in the older matrix.
    pub from_leaked: bool,
    /// Whether it leaks in the newer matrix.
    pub to_leaked: bool,
}

/// One undefended baseline whose cycle count changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleDelta {
    /// Attack name.
    pub attack: String,
    /// Config-slice name.
    pub config: String,
    /// Cycles in the older matrix.
    pub from: u64,
    /// Cycles in the newer matrix.
    pub to: u64,
}

impl CycleDelta {
    /// Relative change, `to` vs `from` (`0.05` = 5 % slower).
    #[must_use]
    pub fn relative(&self) -> f64 {
        if self.from == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)] // cycle counts << 2^52
            {
                (self.to as f64 - self.from as f64) / self.from as f64
            }
        }
    }
}

/// Everything that changed between two campaign matrices — the engine
/// behind `campaign diff OLD.json NEW.json`.
///
/// Cells and baselines are matched by *content key* (attack, defense
/// stack, config name), so the two matrices may have different axes:
/// keys present on one side only are reported as added/removed rather
/// than compared.
#[derive(Debug, Clone, Default)]
pub struct MatrixDiff {
    /// Cells whose machine verdict or graph sufficiency changed.
    pub flips: Vec<VerdictFlip>,
    /// Baselines whose leak verdict changed.
    pub baseline_flips: Vec<BaselineFlip>,
    /// Baselines whose cycle count changed (leak verdict aside).
    pub cycle_deltas: Vec<CycleDelta>,
    /// Keys present only in the newer matrix.
    pub added: Vec<String>,
    /// Keys present only in the older matrix.
    pub removed: Vec<String>,
    /// Cells and baselines present in both and identical.
    pub unchanged: usize,
}

impl MatrixDiff {
    /// Whether the two matrices are identical over their shared keys and
    /// have the same keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.flips.is_empty()
            && self.baseline_flips.is_empty()
            && self.cycle_deltas.is_empty()
            && self.added.is_empty()
            && self.removed.is_empty()
    }

    /// A human-readable multi-line report (one summary line, then one
    /// line per change, deterministic order).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "campaign diff: {} verdict flip(s), {} baseline flip(s), \
             {} cycle delta(s), {} added, {} removed, {} unchanged\n",
            self.flips.len(),
            self.baseline_flips.len(),
            self.cycle_deltas.len(),
            self.added.len(),
            self.removed.len(),
            self.unchanged
        );
        for flip in &self.flips {
            let _ = writeln!(out, "  flip: {flip}");
        }
        for b in &self.baseline_flips {
            let _ = writeln!(
                out,
                "  baseline: {} @ {}: leaked {} -> {}",
                b.attack, b.config, b.from_leaked, b.to_leaked
            );
        }
        for d in &self.cycle_deltas {
            let _ = writeln!(
                out,
                "  cycles: {} @ {}: {} -> {} ({:+.1}%)",
                d.attack,
                d.config,
                d.from,
                d.to,
                d.relative() * 100.0
            );
        }
        for key in &self.added {
            let _ = writeln!(out, "  added: {key}");
        }
        for key in &self.removed {
            let _ = writeln!(out, "  removed: {key}");
        }
        out
    }
}

impl CampaignMatrix {
    /// Compares `self` (the older matrix) against `newer`, by content key.
    /// See [`MatrixDiff`].
    #[must_use]
    pub fn diff(&self, newer: &CampaignMatrix) -> MatrixDiff {
        type CellKey<'a> = (&'a str, &'a str, &'a str);
        let cell_key = |cell: &MatrixCell, configs: &[String]| -> String {
            format!(
                "{} vs {} @ {}",
                cell.defense, cell.attack, configs[cell.config]
            )
        };
        let mut diff = MatrixDiff::default();

        let old_cells: HashMap<CellKey<'_>, &MatrixCell> = self
            .cells
            .iter()
            .map(|cell| {
                (
                    (
                        cell.attack,
                        cell.defense.as_str(),
                        self.configs[cell.config].as_str(),
                    ),
                    cell,
                )
            })
            .collect();
        let mut seen_cells: std::collections::HashSet<CellKey<'_>> =
            std::collections::HashSet::new();
        for cell in &newer.cells {
            let key = (
                cell.attack,
                cell.defense.as_str(),
                newer.configs[cell.config].as_str(),
            );
            match old_cells.get(&key) {
                None => diff.added.push(cell_key(cell, &newer.configs)),
                Some(old) => {
                    seen_cells.insert(key);
                    let (oe, ne) = (&old.evaluation, &cell.evaluation);
                    if oe.mechanism != ne.mechanism
                        || oe.strategy_sufficient != ne.strategy_sufficient
                    {
                        diff.flips.push(VerdictFlip {
                            attack: cell.attack.to_owned(),
                            defense: cell.defense.clone(),
                            config: newer.configs[cell.config].clone(),
                            from: oe.mechanism,
                            to: ne.mechanism,
                            sufficient_from: oe.strategy_sufficient,
                            sufficient_to: ne.strategy_sufficient,
                            false_sense_from: old.false_sense_of_security(),
                            false_sense_to: cell.false_sense_of_security(),
                        });
                    } else {
                        diff.unchanged += 1;
                    }
                }
            }
        }
        for cell in &self.cells {
            let key = (
                cell.attack,
                cell.defense.as_str(),
                self.configs[cell.config].as_str(),
            );
            if !seen_cells.contains(&key) {
                diff.removed.push(cell_key(cell, &self.configs));
            }
        }

        let old_bases: HashMap<(&str, &str), &BaselineCell> = self
            .baselines
            .iter()
            .map(|b| ((b.info.name, self.configs[b.config].as_str()), b))
            .collect();
        let mut seen_bases: std::collections::HashSet<(&str, &str)> =
            std::collections::HashSet::new();
        for b in &newer.baselines {
            let key = (b.info.name, newer.configs[b.config].as_str());
            match old_bases.get(&key) {
                None => diff.added.push(format!("{} @ {} (baseline)", key.0, key.1)),
                Some(old) => {
                    seen_bases.insert(key);
                    if old.leaked != b.leaked {
                        diff.baseline_flips.push(BaselineFlip {
                            attack: b.info.name.to_owned(),
                            config: key.1.to_owned(),
                            from_leaked: old.leaked,
                            to_leaked: b.leaked,
                        });
                    } else if old.cycles != b.cycles {
                        diff.cycle_deltas.push(CycleDelta {
                            attack: b.info.name.to_owned(),
                            config: key.1.to_owned(),
                            from: old.cycles,
                            to: b.cycles,
                        });
                    } else {
                        diff.unchanged += 1;
                    }
                }
            }
        }
        for b in &self.baselines {
            let key = (b.info.name, self.configs[b.config].as_str());
            if !seen_bases.contains(&key) {
                diff.removed
                    .push(format!("{} @ {} (baseline)", key.0, key.1));
            }
        }
        diff
    }
}

/// Checks the `version`/`kind` headers of a campaign document.
/// `allow_legacy` accepts the pre-part version-2 matrix schema (which has
/// no `kind` field). Version-3 documents (single-defense columns, with
/// `kind` headers) always load: their defense names parse as singleton
/// stacks.
fn check_version_and_kind(
    doc: &Json,
    kind: &'static str,
    allow_legacy: bool,
) -> Result<(), CampaignIoError> {
    let version = doc.get("version").and_then(Json::as_u64);
    match version {
        Some(
            SCHEMA_VERSION | PRE_OUTCOME_VERSION | STACK_MATRIX_VERSION | SINGLE_DEFENSE_VERSION,
        ) => {}
        Some(LEGACY_MATRIX_VERSION) if allow_legacy && doc.get("kind").is_none() => {
            return Ok(());
        }
        found => return Err(CampaignIoError::Version { found }),
    }
    match doc.get("kind").and_then(Json::as_str) {
        Some(k) if k == kind => Ok(()),
        Some(other) => Err(CampaignIoError::Kind {
            expected: kind,
            found: other.to_owned(),
        }),
        None => Err(CampaignIoError::Parse("missing 'kind' header".to_owned())),
    }
}

/// Reads the `spec_fingerprint` header of a part document.
fn header_fingerprint(doc: &Json) -> Result<u64, CampaignIoError> {
    let s = doc
        .get("spec_fingerprint")
        .and_then(Json::as_str)
        .ok_or_else(|| CampaignIoError::Parse("missing 'spec_fingerprint' header".to_owned()))?;
    parse_hex_u64(s).ok_or_else(|| CampaignIoError::Parse(format!("bad spec fingerprint '{s}'")))
}

/// The resolved `(attacks, defenses, configs)` axis lists of a campaign
/// document.
type ParsedAxes = (Vec<AttackInfo>, Vec<DefenseStack>, Vec<String>);

/// Resolves the `attacks`/`defenses`/`configs` axis lists of a campaign
/// document against the live registries. Defense entries are stack
/// expressions (`"NDA"`, `"KAISER/KPTI+Retpoline"`), so version-3
/// single-defense documents resolve to singleton stacks.
fn parse_axes(doc: &Json) -> Result<ParsedAxes, CampaignIoError> {
    let str_list = |key: &str| -> Result<Vec<String>, CampaignIoError> {
        doc.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| CampaignIoError::Parse(format!("missing '{key}' list")))?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| CampaignIoError::Parse(format!("non-string in '{key}'")))
            })
            .collect()
    };
    let configs = str_list("configs")?;
    let attacks: Vec<AttackInfo> = str_list("attacks")?
        .into_iter()
        .map(|name| {
            attacks::find(&name)
                .map(|a| a.info())
                .ok_or(CampaignIoError::UnknownAttack(name))
        })
        .collect::<Result<_, _>>()?;
    let defenses: Vec<DefenseStack> = str_list("defenses")?
        .into_iter()
        .map(|name| DefenseStack::parse(&name).map_err(|_| CampaignIoError::UnknownDefense(name)))
        .collect::<Result<_, _>>()?;
    Ok((attacks, defenses, configs))
}

/// The array under `key`, as parsed rows.
fn entries<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], CampaignIoError> {
    doc.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| CampaignIoError::Parse(format!("missing '{key}' list")))
}

/// Parses the baseline/cell rows covering tasks `start..end` of the cube
/// described by the axes, validating that every row names exactly the
/// attack/defense/config its task position implies (attack-major order).
/// For a full matrix `start..end` is the whole task range; for a part it
/// is the shard's slice.
fn parse_rows(
    attacks: &[AttackInfo],
    defenses: &[DefenseStack],
    configs: &[String],
    start: usize,
    end: usize,
    baseline_rows: &[Json],
    cell_rows: &[Json],
) -> Result<(Vec<BaselineCell>, Vec<MatrixCell>), CampaignIoError> {
    let (d, c) = (defenses.len(), configs.len());
    let base_tasks = attacks.len() * c;
    let expected_baselines = end.min(base_tasks).saturating_sub(start.min(base_tasks));
    let expected_cells = (end - start) - expected_baselines;
    if baseline_rows.len() != expected_baselines {
        return Err(CampaignIoError::Shape(format!(
            "expected {expected_baselines} baselines, found {}",
            baseline_rows.len()
        )));
    }
    if cell_rows.len() != expected_cells {
        return Err(CampaignIoError::Shape(format!(
            "expected {expected_cells} cells, found {}",
            cell_rows.len()
        )));
    }
    let mut baselines = Vec::with_capacity(expected_baselines);
    let mut cells = Vec::with_capacity(expected_cells);
    for task in start..end {
        if task < base_tasks {
            let row = &baseline_rows[task - start];
            let info = attacks[task / c];
            let config = task % c;
            let name = field_str(row, "attack")?;
            if name != info.name {
                return Err(CampaignIoError::Shape(format!(
                    "baseline for task {task} names '{name}', expected '{}' \
                     (attack-major order)",
                    info.name
                )));
            }
            let cfg_name = field_str(row, "config")?;
            if cfg_name != configs[config] {
                return Err(CampaignIoError::Shape(format!(
                    "baseline for task {task} names config '{cfg_name}', expected '{}' \
                     (attack-major order)",
                    configs[config]
                )));
            }
            baselines.push(BaselineCell {
                info,
                config,
                leaked: field_bool(row, "leaked")?,
                recovered: match row.get("recovered") {
                    Some(Json::Null) | None => None,
                    Some(v) => Some(v.as_u64().ok_or_else(|| {
                        CampaignIoError::Parse("non-integer 'recovered'".to_owned())
                    })?),
                },
                cycles: field_u64(row, "cycles")?,
                graph_race: field_bool(row, "graph_race")?,
                fingerprint: field_fingerprint(row)?,
                outcome: baseline_outcome(row)?,
            });
        } else {
            let j = task - base_tasks;
            let row = &cell_rows[task - base_tasks.max(start)];
            let info = attacks[j / (d * c)];
            let defense = &defenses[(j / c) % d];
            let config = j % c;
            let (aname, dname) = (field_str(row, "attack")?, field_str(row, "defense")?);
            if aname != info.name || dname != defense.name() {
                return Err(CampaignIoError::Shape(format!(
                    "cell for task {task} names ('{aname}', '{dname}'), \
                     expected ('{}', '{}')",
                    info.name,
                    defense.name()
                )));
            }
            let cfg_name = field_str(row, "config")?;
            if cfg_name != configs[config] {
                return Err(CampaignIoError::Shape(format!(
                    "cell for task {task} names config '{cfg_name}', expected '{}' \
                     (attack-major order)",
                    configs[config]
                )));
            }
            // The declared strategy must be the stack's own joined token —
            // a mismatch means the row was written for a different stack.
            let strategy = field_str(row, "strategy")?;
            if strategy != defense.strategy_token() {
                return Err(CampaignIoError::Shape(format!(
                    "cell for task {task} declares strategy '{strategy}', \
                     stack '{}' implements '{}'",
                    defense.name(),
                    defense.strategy_token()
                )));
            }
            // Degraded outcome tokens ride in the mechanism column; a
            // degraded cell has no machine verdict, only the graph one.
            let mech_token = field_str(row, "mechanism")?;
            let (mechanism, outcome) = match mech_token {
                "timed_out" => (
                    Verdict::GraphOnly,
                    CellOutcome::TimedOut {
                        limit: field_u64(row, "budget")?,
                    },
                ),
                "quarantined" => (
                    Verdict::GraphOnly,
                    CellOutcome::Quarantined {
                        reason: field_str(row, "quarantine_reason")?.to_owned(),
                    },
                ),
                token => (
                    verdict_from_token(token)
                        .ok_or_else(|| CampaignIoError::UnknownToken(token.to_owned()))?,
                    CellOutcome::Ok,
                ),
            };
            let strategy_sufficient = match row.get("strategy_sufficient") {
                Some(Json::Null) | None => None,
                Some(v) => Some(v.as_bool().ok_or_else(|| {
                    CampaignIoError::Parse("non-boolean 'strategy_sufficient'".to_owned())
                })?),
            };
            cells.push(MatrixCell {
                attack: info.name,
                defense: defense.name().to_owned(),
                config,
                evaluation: Evaluation {
                    attack: info.name,
                    stack: defense.clone(),
                    strategy_sufficient,
                    mechanism,
                },
                fingerprint: field_fingerprint(row)?,
                outcome,
            });
        }
    }
    Ok((baselines, cells))
}

/// Writes one baseline row in the shared matrix/part JSON row format.
/// Fault-free rows are byte-identical to the version-5 format; degraded
/// rows append an `"outcome"` token plus its reason/budget field.
fn write_baseline_row(out: &mut String, b: &BaselineCell, configs: &[String]) {
    let _ = write!(
        out,
        "\n    {{\"attack\": {}, \"config\": {}, \"leaked\": {}, \"recovered\": {}, \"cycles\": {}, \"graph_race\": {}, \"fingerprint\": \"{:#018x}\"",
        json_str(b.info.name),
        json_str(&configs[b.config]),
        b.leaked,
        b.recovered
            .map_or_else(|| "null".to_owned(), |v| v.to_string()),
        b.cycles,
        b.graph_race,
        b.fingerprint,
    );
    match &b.outcome {
        CellOutcome::Ok => {}
        CellOutcome::TimedOut { limit } => {
            let _ = write!(out, ", \"outcome\": \"timed_out\", \"budget\": {limit}");
        }
        CellOutcome::Quarantined { reason } => {
            let _ = write!(
                out,
                ", \"outcome\": \"quarantined\", \"quarantine_reason\": {}",
                json_str(reason)
            );
        }
    }
    out.push('}');
}

/// Writes one matrix-cell row in the shared matrix/part JSON row format.
/// A degraded cell's outcome token rides in the mechanism column
/// (`"quarantined"`/`"timed_out"`), followed by its reason/budget field;
/// fault-free rows are byte-identical to the version-5 format.
fn write_cell_row(out: &mut String, cell: &MatrixCell, configs: &[String]) {
    let e = &cell.evaluation;
    let _ = write!(
        out,
        "\n    {{\"attack\": {}, \"defense\": {}, \"config\": {}, \"strategy\": {}, \"strategy_sufficient\": {}, \"mechanism\": {}, \"false_sense\": {}, \"fingerprint\": \"{:#018x}\"",
        json_str(cell.attack),
        json_str(&cell.defense),
        json_str(&configs[cell.config]),
        json_str(&e.stack.strategy_token()),
        e.strategy_sufficient
            .map_or_else(|| "null".to_owned(), |b| b.to_string()),
        json_str(cell.mechanism_token()),
        cell.false_sense_of_security(),
        cell.fingerprint,
    );
    match &cell.outcome {
        CellOutcome::Ok => {}
        CellOutcome::TimedOut { limit } => {
            let _ = write!(out, ", \"budget\": {limit}");
        }
        CellOutcome::Quarantined { reason } => {
            let _ = write!(out, ", \"quarantine_reason\": {}", json_str(reason));
        }
    }
    out.push('}');
}

/// Parses a baseline row's optional `"outcome"` token (absent in
/// version ≤ 5 documents and in fault-free version-7 rows).
fn baseline_outcome(row: &Json) -> Result<CellOutcome, CampaignIoError> {
    let Some(value) = row.get("outcome") else {
        return Ok(CellOutcome::Ok);
    };
    match value.as_str() {
        Some("timed_out") => Ok(CellOutcome::TimedOut {
            limit: field_u64(row, "budget")?,
        }),
        Some("quarantined") => Ok(CellOutcome::Quarantined {
            reason: field_str(row, "quarantine_reason")?.to_owned(),
        }),
        Some(other) => Err(CampaignIoError::UnknownToken(other.to_owned())),
        None => Err(CampaignIoError::Parse(
            "non-string 'outcome' field".to_owned(),
        )),
    }
}

fn field_str<'a>(row: &'a Json, key: &str) -> Result<&'a str, CampaignIoError> {
    row.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| CampaignIoError::Parse(format!("missing string field '{key}'")))
}

fn field_bool(row: &Json, key: &str) -> Result<bool, CampaignIoError> {
    row.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| CampaignIoError::Parse(format!("missing boolean field '{key}'")))
}

fn field_u64(row: &Json, key: &str) -> Result<u64, CampaignIoError> {
    row.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| CampaignIoError::Parse(format!("missing integer field '{key}'")))
}

fn parse_hex_u64(s: &str) -> Option<u64> {
    s.strip_prefix("0x")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
}

fn field_fingerprint(row: &Json) -> Result<u64, CampaignIoError> {
    let s = field_str(row, "fingerprint")?;
    parse_hex_u64(s).ok_or_else(|| CampaignIoError::Parse(format!("bad fingerprint '{s}'")))
}

/// Errors from campaign persistence ([`CampaignMatrix::save_json`] /
/// [`CampaignMatrix::load_json`] and the [`CampaignPart`] equivalents).
///
/// Every failure mode is typed: callers (the `campaign` CLI in
/// particular) can distinguish a truncated file ([`Json`](Self::Json))
/// from a version skew ([`Version`](Self::Version)) from handing a part
/// to a matrix reader ([`Kind`](Self::Kind)) and say so.
#[derive(Debug)]
#[non_exhaustive]
pub enum CampaignIoError {
    /// File I/O failed.
    Io(std::io::Error),
    /// The document is not syntactically valid JSON (malformed or
    /// truncated input; the error carries the byte offset).
    Json(JsonError),
    /// The document is valid JSON but not a valid campaign document.
    Parse(String),
    /// The document declares an unsupported schema version (or none).
    Version {
        /// The version the document declares, if any.
        found: Option<u64>,
    },
    /// The document is a different kind of campaign artifact (e.g. a
    /// shard part handed to the matrix reader, or vice versa).
    Kind {
        /// The kind the reader needed.
        expected: &'static str,
        /// The kind the document declares.
        found: String,
    },
    /// An attack name no longer resolves in [`attacks::registry`].
    UnknownAttack(String),
    /// A defense name no longer resolves in [`defenses::registry`].
    UnknownDefense(String),
    /// An unknown strategy/verdict token.
    UnknownToken(String),
    /// Cell counts do not match the declared axes.
    Shape(String),
}

impl fmt::Display for CampaignIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignIoError::Io(e) => write!(f, "campaign I/O failed: {e}"),
            CampaignIoError::Json(e) => write!(f, "malformed JSON: {e}"),
            CampaignIoError::Parse(msg) => write!(f, "malformed campaign document: {msg}"),
            CampaignIoError::Version { found: Some(v) } => write!(
                f,
                "unsupported schema version {v} (this build reads versions \
                 {LEGACY_MATRIX_VERSION}, {SINGLE_DEFENSE_VERSION}, \
                 {STACK_MATRIX_VERSION}, {PRE_OUTCOME_VERSION} and \
                 {SCHEMA_VERSION})"
            ),
            CampaignIoError::Version { found: None } => {
                f.write_str("missing schema version header")
            }
            CampaignIoError::Kind { expected, found } => write!(
                f,
                "expected a '{expected}' document, found '{found}' \
                 (campaign parts and matrices do not interchange; merge \
                 parts into a matrix first)"
            ),
            CampaignIoError::UnknownAttack(name) => {
                write!(f, "attack '{name}' is not in the registry")
            }
            CampaignIoError::UnknownDefense(name) => {
                write!(f, "defense '{name}' is not in the registry")
            }
            CampaignIoError::UnknownToken(token) => write!(f, "unknown token '{token}'"),
            CampaignIoError::Shape(msg) => write!(f, "inconsistent campaign shape: {msg}"),
        }
    }
}

impl Error for CampaignIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CampaignIoError::Io(e) => Some(e),
            CampaignIoError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CampaignIoError {
    fn from(e: std::io::Error) -> Self {
        CampaignIoError::Io(e)
    }
}

impl From<JsonError> for CampaignIoError {
    fn from(e: JsonError) -> Self {
        CampaignIoError::Json(e)
    }
}

/// Stable machine-readable token for a strategy (delegates to
/// [`Strategy::token`]; a stack's `strategy` column joins its distinct
/// members' tokens with `+`).
#[must_use]
pub fn strategy_token(s: Strategy) -> &'static str {
    s.token()
}

/// The [`Strategy`] for a [`strategy_token`] string.
#[must_use]
pub fn strategy_from_token(token: &str) -> Option<Strategy> {
    Strategy::from_token(token)
}

/// Stable machine-readable token for a verdict.
#[must_use]
pub fn verdict_token(v: Verdict) -> &'static str {
    match v {
        Verdict::Blocked => "blocked",
        Verdict::Leaked => "leaked",
        Verdict::GraphOnly => "graph_only",
    }
}

/// The [`Verdict`] for a [`verdict_token`] string.
#[must_use]
pub fn verdict_from_token(token: &str) -> Option<Verdict> {
    [Verdict::Blocked, Verdict::Leaked, Verdict::GraphOnly]
        .into_iter()
        .find(|&v| verdict_token(v) == token)
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", ch as u32);
            }
            ch => out.push(ch),
        }
    }
    out.push('"');
    out
}

pub(crate) fn push_json_list<'a>(out: &mut String, items: impl Iterator<Item = &'a str>) {
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(item));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(threads: usize) -> CampaignSpec {
        let mut spec = CampaignSpec::default();
        spec.attacks.truncate(4);
        spec.defenses.truncate(3);
        spec.threads = threads;
        spec
    }

    fn tiny_grid(threads: usize) -> CampaignSpec {
        CampaignSpec::builder(UarchConfig::default())
            .attacks(attacks::registry().iter().copied().take(3))
            .defenses(defenses::registry().iter().copied().take(2))
            .axis(Knob::RobDepth, [16usize, 64])
            .axis(
                Knob::Predictor,
                [PredictorFlavor::Shared, PredictorFlavor::FlushOnSwitch],
            )
            .threads(threads)
            .build()
    }

    #[test]
    fn shape_and_order_are_attack_major() {
        let m = CampaignMatrix::run(&small_spec(2)).unwrap();
        assert_eq!(m.shape(), (4, 3, 1));
        assert_eq!(m.cells().len(), 12);
        assert_eq!(m.baselines().len(), 4);
        let mut expected = Vec::new();
        for a in &m.attacks {
            for d in &m.defenses {
                expected.push((a.name, d.name().to_owned()));
            }
        }
        let got: Vec<_> = m
            .cells()
            .iter()
            .map(|c| (c.attack, c.defense.clone()))
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let serial = CampaignMatrix::run(&small_spec(1)).unwrap();
        let parallel = CampaignMatrix::run(&small_spec(4)).unwrap();
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn warm_pool_matches_per_cell_rebuild() {
        // The executor runs every task on a worker's pooled, reset machine.
        // Re-derive each cell with a cold per-cell machine (the pre-pool
        // semantics) and demand identical observables — leak verdicts,
        // recovered bytes, *and* cycle counts, the strictest reset ≡ new
        // witness the campaign can express.
        let spec = tiny_grid(2);
        let m = CampaignMatrix::run(&spec).unwrap();
        for b in m.baselines() {
            let attack = spec
                .attacks
                .iter()
                .find(|a| a.info().name == b.info.name)
                .expect("baseline attack registered");
            let cold = attack.run(&spec.configs[b.config].config).unwrap();
            assert_eq!(b.leaked, cold.leaked, "{} leak verdict", b.info.name);
            assert_eq!(b.recovered, cold.recovered, "{} recovery", b.info.name);
            assert_eq!(b.cycles, cold.cycles, "{} cycle count", b.info.name);
        }
        let (d, c) = (spec.defenses.len(), spec.configs.len());
        for (k, cell) in m.cells().iter().enumerate() {
            let attack = spec.attacks[k / (d * c)];
            let stack = &spec.defenses[(k / c) % d];
            let cold =
                defenses::verify_stack(stack, attack, &spec.configs[cell.config].config).unwrap();
            assert_eq!(
                cell.evaluation.mechanism, cold,
                "{} × {} verdict",
                cell.attack, cell.defense
            );
        }
    }

    #[test]
    fn lookups_resolve_cells_and_baselines() {
        let m = CampaignMatrix::run(&small_spec(0)).unwrap();
        let cell = m
            .cell(attacks::names::SPECTRE_V1, defenses::names::LFENCE, 0)
            .expect("cell exists");
        assert_eq!(cell.evaluation.mechanism, Verdict::Blocked);
        assert!(m.cell("nope", defenses::names::LFENCE, 0).is_none());
        assert!(m
            .cell(attacks::names::SPECTRE_V1, defenses::names::LFENCE, 9)
            .is_none());
        let b = m.baseline(attacks::names::SPECTRE_V1, 0).expect("baseline");
        assert!(b.leaked && b.graph_race);
        assert!(b.cycles > 0);
        assert!(m.baseline(attacks::names::SPECTRE_V1, 9).is_none());
        assert!(m.baseline("nope", 0).is_none());
    }

    #[test]
    fn builder_expands_cartesian_grids_with_stable_names() {
        let spec = tiny_grid(0);
        assert_eq!(spec.configs.len(), 4);
        let names: Vec<&str> = spec.configs.iter().map(|nc| nc.name.as_str()).collect();
        // First axis varies slowest.
        assert_eq!(
            names,
            [
                "rob=16 pred=shared",
                "rob=16 pred=flush",
                "rob=64 pred=shared",
                "rob=64 pred=flush",
            ]
        );
        assert_eq!(spec.configs[0].config.rob_capacity, 16);
        assert!(!spec.configs[0].config.flush_predictors_on_switch);
        assert!(spec.configs[1].config.flush_predictors_on_switch);
        assert_eq!(spec.configs[2].config.rob_capacity, 64);
    }

    #[test]
    fn hardening_axis_reproduces_the_figure8_sweep() {
        let spec = CampaignSpec::builder(UarchConfig::default())
            .attacks(attacks::registry().iter().copied().take(2))
            .defenses(defenses::registry().iter().copied().take(1))
            .axis(Knob::Hardening, Hardening::figure8())
            .build();
        let m = CampaignMatrix::run(&spec).unwrap();
        assert_eq!(m.shape(), (2, 1, 5));
        assert_eq!(m.configs[0], "baseline");
        assert_eq!(m.configs[2], "② NDA");
        // Hardened slices must not report more leaks than the baseline.
        for a in &m.attacks {
            let base = m.baseline(a.name, 0).unwrap();
            let nda = m.baseline(a.name, 2).unwrap();
            assert!(base.leaked);
            assert!(!nda.leaked, "{} leaks under global NDA", a.name);
        }
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_axis_panics() {
        let _ = CampaignSpec::builder(UarchConfig::default())
            .axis(Knob::RobDepth, [16usize])
            .axis(Knob::RobDepth, [32usize]);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_axis_value_panics() {
        let _ = CampaignSpec::builder(UarchConfig::default()).axis(Knob::RobDepth, [16usize, 16]);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_axis_panics() {
        let _ = CampaignSpec::builder(UarchConfig::default())
            .axis(Knob::CacheSets, Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "cannot take value")]
    fn mismatched_knob_value_panics() {
        let _ = CampaignSpec::builder(UarchConfig::default())
            .axis(Knob::Predictor, [KnobValue::Num(3)])
            .build();
    }

    #[test]
    #[should_panic(expected = "pins the predictor flags")]
    fn predictor_axis_rejects_flush_hardening_axis() {
        // A "④ flush predictors pred=shared" slice would be a lie: the
        // predictor axis pins the very flag the hardening sets.
        let _ = CampaignSpec::builder(UarchConfig::default())
            .axis(Knob::Hardening, Hardening::figure8())
            .axis(Knob::Predictor, [PredictorFlavor::Shared]);
    }

    #[test]
    fn predictor_axis_pins_the_flavor_over_the_base() {
        // The axis overrides base predictor flags, so every slice is the
        // machine its name claims regardless of the base configuration.
        let hardened_base = UarchConfig::builder()
            .flush_predictors_on_switch(true)
            .rsb_stuffing(true)
            .build();
        let spec = CampaignSpec::builder(hardened_base)
            .axis(Knob::Predictor, [PredictorFlavor::Shared])
            .build();
        let cfg = &spec.configs[0].config;
        assert!(!cfg.flush_predictors_on_switch);
        assert!(!cfg.no_indirect_prediction);
        assert!(!cfg.rsb_stuffing);
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_axes() {
        let base = UarchConfig::default();
        let digest = config_digest(&base);
        assert_eq!(digest, config_digest(&base.clone()));
        let other = UarchConfig::builder().rob_capacity(16).build();
        assert_ne!(digest, config_digest(&other));
        assert_ne!(
            baseline_fingerprint("Spectre v1", digest),
            baseline_fingerprint("Spectre v2", digest)
        );
        assert_ne!(
            cell_fingerprint("Spectre v1", "NDA", "prevent_use", digest),
            cell_fingerprint("Spectre v1", "NDA", "prevent_use", config_digest(&other))
        );
        assert_ne!(
            cell_fingerprint("Spectre v1", "NDA", "prevent_use", digest),
            baseline_fingerprint("Spectre v1", digest)
        );
    }

    #[test]
    fn sharded_run_is_bit_identical() {
        let spec = small_spec(2);
        let whole = CampaignMatrix::run(&spec).unwrap();
        for n in [1, 2, 5, 16, 100] {
            let shards = spec.shards(n);
            assert_eq!(shards.len(), n.max(1));
            assert_eq!(
                shards.iter().map(CampaignShard::len).sum::<usize>(),
                spec.total_tasks()
            );
            let parts: Vec<CampaignPart> = shards.iter().map(|s| s.run().unwrap()).collect();
            let merged = CampaignMatrix::merge(parts).unwrap();
            assert_eq!(merged.to_csv(), whole.to_csv());
            assert_eq!(merged.to_json(), whole.to_json());
        }
    }

    #[test]
    fn merge_rejects_bad_part_sets() {
        let spec = small_spec(1);
        let parts: Vec<CampaignPart> = spec.shards(3).iter().map(|s| s.run().unwrap()).collect();
        assert!(matches!(
            CampaignMatrix::merge(Vec::new()),
            Err(MergeError::Empty)
        ));
        assert!(matches!(
            CampaignMatrix::merge(parts[..2].to_vec()),
            Err(MergeError::WrongCount {
                expected: 3,
                got: 2
            })
        ));
        let mut dup = parts.clone();
        dup[2] = dup[1].clone();
        assert!(matches!(
            CampaignMatrix::merge(dup),
            Err(MergeError::ShardIndex { .. })
        ));
        // A shard of a different spec cannot sneak in: the fingerprint
        // check catches it before any axis comparison.
        let mut mixed = parts.clone();
        let mut foreign = tiny_grid(1).shards(3)[1].run().unwrap();
        foreign.index = 1;
        mixed[1] = foreign;
        assert!(matches!(
            CampaignMatrix::merge(mixed),
            Err(MergeError::SpecMismatch { index: 1, .. })
        ));
        // Same axis *names*, different base config: only the fingerprint
        // (which digests config contents) can tell these shards apart.
        let mut sneaky_spec = small_spec(1);
        for nc in &mut sneaky_spec.configs {
            nc.config.rob_capacity = 7;
        }
        let mut sneaky = parts.clone();
        let mut foreign = sneaky_spec.shards(3)[1].run().unwrap();
        foreign.index = 1;
        sneaky[1] = foreign;
        assert!(matches!(
            CampaignMatrix::merge(sneaky),
            Err(MergeError::SpecMismatch { index: 1, .. })
        ));
    }

    #[test]
    fn spec_fingerprints_cover_every_axis_but_not_threads() {
        let spec = small_spec(1);
        assert_eq!(spec.fingerprint(), small_spec(8).fingerprint());
        let mut fewer = spec.clone();
        fewer.attacks.truncate(3);
        assert_ne!(spec.fingerprint(), fewer.fingerprint());
        let mut fewer = spec.clone();
        fewer.defenses.truncate(2);
        assert_ne!(spec.fingerprint(), fewer.fingerprint());
        let mut rebased = spec.clone();
        rebased.configs[0].config.rob_capacity = 7;
        assert_ne!(spec.fingerprint(), rebased.fingerprint());
    }

    #[test]
    fn part_json_round_trips_and_merges_bit_identically() {
        let spec = small_spec(2);
        let whole = CampaignMatrix::run(&spec).unwrap();
        let parts: Vec<CampaignPart> = spec
            .shards(3)
            .iter()
            .map(|s| {
                let part = s.run().unwrap();
                let reloaded = CampaignPart::from_json(&part.to_json()).unwrap();
                assert_eq!(reloaded.to_json(), part.to_json());
                assert_eq!(reloaded.spec_fingerprint(), spec.fingerprint());
                assert_eq!(reloaded.len(), part.len());
                reloaded
            })
            .collect();
        let merged = CampaignMatrix::merge(parts).unwrap();
        assert_eq!(merged.to_json(), whole.to_json());
        assert_eq!(merged.to_csv(), whole.to_csv());
    }

    #[test]
    fn part_reader_rejects_inconsistent_headers() {
        let spec = small_spec(1);
        let part = spec.shards(2)[0].run().unwrap();
        let doc = part.to_json();
        // Tampered shard slot: index out of the declared count.
        let bad = doc.replacen("\"index\": 0, \"of\": 2", "\"index\": 5, \"of\": 2", 1);
        assert!(matches!(
            CampaignPart::from_json(&bad),
            Err(CampaignIoError::Shape(_))
        ));
        // Tampered total: header disagrees with the axes.
        let bad = doc.replacen(
            &format!("\"total\": {}", spec.total_tasks()),
            "\"total\": 9999",
            1,
        );
        assert!(matches!(
            CampaignPart::from_json(&bad),
            Err(CampaignIoError::Shape(_))
        ));
        // A matrix document is not a part, and vice versa.
        let matrix = CampaignMatrix::run(&spec).unwrap();
        assert!(matches!(
            CampaignPart::from_json(&matrix.to_json()),
            Err(CampaignIoError::Kind {
                expected: "campaign-part",
                ..
            })
        ));
        assert!(matches!(
            CampaignMatrix::from_json(&doc),
            Err(CampaignIoError::Kind {
                expected: "campaign-matrix",
                ..
            })
        ));
    }

    #[test]
    fn legacy_version2_matrices_still_load() {
        let m = CampaignMatrix::run(&small_spec(0)).unwrap();
        let legacy = m.to_json().replacen(
            "\"version\": 7,\n  \"kind\": \"campaign-matrix\",",
            "\"version\": 2,",
            1,
        );
        let loaded = CampaignMatrix::from_json(&legacy).unwrap();
        // Loading upgrades: the re-serialized document is version 7.
        assert_eq!(loaded.to_json(), m.to_json());
    }

    #[test]
    fn version3_single_defense_documents_still_load() {
        // A singleton-stack campaign writes byte-identical rows to the
        // pre-stack schema, so rewriting the version header alone yields
        // exactly what a version-3 build produced — and it must load.
        let m = CampaignMatrix::run(&small_spec(0)).unwrap();
        let v3 = m.to_json().replacen("\"version\": 7", "\"version\": 3", 1);
        let loaded = CampaignMatrix::from_json(&v3).unwrap();
        assert_eq!(loaded.to_json(), m.to_json());
        // The same holds for shard parts.
        let part = small_spec(0).shards(2)[0].run().unwrap();
        let v3 = part
            .to_json()
            .replacen("\"version\": 7", "\"version\": 3", 1);
        let loaded = CampaignPart::from_json(&v3).unwrap();
        assert_eq!(loaded.to_json(), part.to_json());
        // And a v3 matrix feeds incremental reuse without re-simulation.
        let v3 = m.to_json().replacen("\"version\": 7", "\"version\": 3", 1);
        let prev = CampaignMatrix::from_json(&v3).unwrap();
        let (_, report) = CampaignMatrix::run_incremental(&small_spec(0), Some(&prev)).unwrap();
        assert_eq!(report.evaluated, 0);
    }

    #[test]
    fn version4_stack_matrices_still_load() {
        // Versions 5 and 7 only add the checkpoint document kind and the
        // degraded-outcome fields; fault-free matrix and part rows are
        // unchanged, so a version-4 header must keep loading (and
        // re-serialize at version 7).
        let m = CampaignMatrix::run(&small_spec(0)).unwrap();
        let v4 = m.to_json().replacen("\"version\": 7", "\"version\": 4", 1);
        let loaded = CampaignMatrix::from_json(&v4).unwrap();
        assert_eq!(loaded.to_json(), m.to_json());
        let part = small_spec(0).shards(2)[1].run().unwrap();
        let v4 = part
            .to_json()
            .replacen("\"version\": 7", "\"version\": 4", 1);
        let loaded = CampaignPart::from_json(&v4).unwrap();
        assert_eq!(loaded.to_json(), part.to_json());
    }

    #[test]
    fn checkpoint_documents_round_trip_but_do_not_interchange() {
        let part = small_spec(0).shards(3)[1].run().unwrap();
        let doc = part.to_checkpoint_json();
        assert!(doc.contains("\"kind\": \"campaign-checkpoint\""));
        let loaded = CampaignPart::from_checkpoint_json(&doc).unwrap();
        assert_eq!(loaded.to_json(), part.to_json());
        assert_eq!((loaded.start(), loaded.end()), (part.start(), part.end()));
        // A checkpoint is not a part and vice versa.
        assert!(matches!(
            CampaignPart::from_json(&doc),
            Err(CampaignIoError::Kind {
                expected: "campaign-part",
                ..
            })
        ));
        assert!(matches!(
            CampaignPart::from_checkpoint_json(&part.to_json()),
            Err(CampaignIoError::Kind {
                expected: "campaign-checkpoint",
                ..
            })
        ));
    }

    #[test]
    fn version_and_syntax_errors_are_typed() {
        assert!(matches!(
            CampaignMatrix::from_json("{}"),
            Err(CampaignIoError::Version { found: None })
        ));
        let m = CampaignMatrix::run(&small_spec(0)).unwrap();
        let doc = m.to_json().replacen("\"version\": 7", "\"version\": 99", 1);
        assert!(matches!(
            CampaignMatrix::from_json(&doc),
            Err(CampaignIoError::Version { found: Some(99) })
        ));
        // Truncation surfaces the JSON layer's typed error with an offset,
        // and it is distinguishable from a syntax error — the scheduler
        // relies on this to treat a half-written checkpoint as "not done".
        let whole = m.to_json();
        match CampaignMatrix::from_json(&whole[..whole.len() / 2]) {
            Err(CampaignIoError::Json(e)) => {
                assert!(e.offset() <= whole.len() / 2);
                assert!(e.is_truncated());
            }
            other => panic!("expected a Json error, got {other:?}"),
        }
    }

    #[test]
    fn incremental_rerun_of_unchanged_spec_evaluates_nothing() {
        let spec = small_spec(0);
        let (first, initial) = CampaignMatrix::run_incremental(&spec, None).unwrap();
        assert_eq!(initial.evaluated, spec.total_tasks());
        assert_eq!(initial.reused, 0);
        let (again, report) = CampaignMatrix::run_incremental(&spec, Some(&first)).unwrap();
        assert_eq!(report.evaluated, 0);
        assert_eq!(report.reused, spec.total_tasks());
        assert_eq!(again.to_json(), first.to_json());
    }

    #[test]
    fn incremental_reevaluates_only_the_changed_config_slice() {
        let grid = |rob2: usize| {
            CampaignSpec::builder(UarchConfig::default())
                .attacks(attacks::registry().iter().copied().take(3))
                .defenses(defenses::registry().iter().copied().take(2))
                .axis(Knob::RobDepth, [16usize, rob2])
                .build()
        };
        let (first, _) = CampaignMatrix::run_incremental(&grid(64), None).unwrap();
        let changed = grid(48);
        let (second, report) = CampaignMatrix::run_incremental(&changed, Some(&first)).unwrap();
        // Only the rob=48 slice is stale: 3 baselines + 3×2 cells.
        let (a, d, _) = second.shape();
        assert_eq!(report.evaluated, a + a * d);
        assert_eq!(report.reused, changed.total_tasks() - report.evaluated);
        // The reused slice is byte-identical to a fresh run.
        let fresh = CampaignMatrix::run(&changed).unwrap();
        assert_eq!(second.to_json(), fresh.to_json());
    }

    #[test]
    fn json_round_trips_through_from_json() {
        let m = CampaignMatrix::run(&small_spec(0)).unwrap();
        let loaded = CampaignMatrix::from_json(&m.to_json()).unwrap();
        assert_eq!(loaded.to_json(), m.to_json());
        assert_eq!(loaded.to_csv(), m.to_csv());
        // A loaded matrix feeds run_incremental exactly like a live one.
        let spec = small_spec(0);
        let (_, report) = CampaignMatrix::run_incremental(&spec, Some(&loaded)).unwrap();
        assert_eq!(report.evaluated, 0);
    }

    #[test]
    fn from_json_rejects_foreign_documents() {
        assert!(matches!(
            CampaignMatrix::from_json("not json"),
            Err(CampaignIoError::Json(_))
        ));
        let m = CampaignMatrix::run(&small_spec(0)).unwrap();
        let doc = m.to_json().replace("Spectre v1", "Spectre v99");
        assert!(matches!(
            CampaignMatrix::from_json(&doc),
            Err(CampaignIoError::UnknownAttack(_))
        ));
        // A reordered/renamed configs list must not silently remap rows.
        let grid = CampaignMatrix::run(&tiny_grid(0)).unwrap();
        let doc = grid.to_json().replacen(
            "\"rob=16 pred=shared\", \"rob=16 pred=flush\"",
            "\"rob=16 pred=flush\", \"rob=16 pred=shared\"",
            1,
        );
        assert!(matches!(
            CampaignMatrix::from_json(&doc),
            Err(CampaignIoError::Shape(_))
        ));
    }

    #[test]
    fn exports_are_well_formed() {
        let m = CampaignMatrix::run(&small_spec(0)).unwrap();
        let csv = m.to_csv();
        assert_eq!(csv.lines().count(), 1 + 12);
        assert!(csv.starts_with("attack,defense,config,"));
        let json = m.to_json();
        assert!(json.contains("\"cells\""));
        assert!(json.contains("\"version\": 7"));
        assert!(json.contains("\"kind\": \"campaign-matrix\""));
        assert_eq!(json.matches("{\"attack\"").count(), 12 + 4);
        // Escaping: a quote in a config name must not break the document.
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("plain"), "plain");
    }

    #[test]
    fn token_round_trips() {
        for s in Strategy::all() {
            assert_eq!(strategy_from_token(strategy_token(s)), Some(s));
        }
        for v in [Verdict::Blocked, Verdict::Leaked, Verdict::GraphOnly] {
            assert_eq!(verdict_from_token(verdict_token(v)), Some(v));
        }
        assert!(strategy_from_token("nope").is_none());
        assert!(verdict_from_token("nope").is_none());
    }

    fn stack_spec() -> CampaignSpec {
        CampaignSpec::builder(UarchConfig::default())
            .attacks([
                attacks::find(attacks::names::SPECTRE_V1).unwrap(),
                attacks::find(attacks::names::SPECTRE_V2).unwrap(),
                attacks::find(attacks::names::MELTDOWN).unwrap(),
            ])
            .defense_stacks([
                defenses::presets::linux_default(),
                DefenseStack::parse("stt").unwrap(),
            ])
            .build()
    }

    #[test]
    fn defense_stack_axis_runs_and_round_trips() {
        let m = CampaignMatrix::run(&stack_spec()).unwrap();
        assert_eq!(m.shape(), (3, 2, 1));
        let linux = "KAISER/KPTI+Retpoline+IBPB+RSB stuffing";
        // O(1) lookup by stack name.
        let v2 = m.cell(attacks::names::SPECTRE_V2, linux, 0).unwrap();
        assert_eq!(v2.evaluation.mechanism, Verdict::Blocked);
        assert_eq!(v2.evaluation.stack.members().len(), 4);
        // The bundle is the §V-B false sense vs Spectre v1.
        let v1 = m.cell(attacks::names::SPECTRE_V1, linux, 0).unwrap();
        assert!(v1.false_sense_of_security());
        // CSV carries the stack name and the joined strategy token.
        let csv = m.to_csv();
        assert!(csv.contains(linux));
        assert!(csv.contains("prevent_access+clear_predictions"));
        // JSON round-trips: the stack expression resolves on load.
        let loaded = CampaignMatrix::from_json(&m.to_json()).unwrap();
        assert_eq!(loaded.to_json(), m.to_json());
        assert_eq!(loaded.to_csv(), m.to_csv());
        // …and feeds incremental reuse.
        let (_, report) = CampaignMatrix::run_incremental(&stack_spec(), Some(&loaded)).unwrap();
        assert_eq!(report.evaluated, 0);
    }

    #[test]
    fn stack_member_order_never_changes_verdicts() {
        let spec_for = |expr: &str| {
            CampaignSpec::builder(UarchConfig::default())
                .attacks(attacks::registry().iter().copied().take(4))
                .defense_stacks([DefenseStack::parse(expr).unwrap()])
                .build()
        };
        let fwd = CampaignMatrix::run(&spec_for("kpti+retpoline+ibpb")).unwrap();
        let rev = CampaignMatrix::run(&spec_for("ibpb+retpoline+kpti")).unwrap();
        let verdicts = |m: &CampaignMatrix| -> Vec<(String, Verdict, Option<bool>)> {
            m.cells()
                .iter()
                .map(|cell| {
                    (
                        cell.attack.to_owned(),
                        cell.evaluation.mechanism,
                        cell.evaluation.strategy_sufficient,
                    )
                })
                .collect()
        };
        assert_eq!(verdicts(&fwd), verdicts(&rev));
        // Only the display name differs.
        assert_ne!(fwd.cells()[0].defense, rev.cells()[0].defense);
    }

    #[test]
    fn singleton_stack_sweep_is_identical_to_defense_sweep() {
        // The .defenses() path (singleton stacks) and an explicit
        // singleton .defense_stacks() path are byte-identical artifacts.
        let picked: Vec<Defense> = defenses::registry().iter().copied().take(3).collect();
        let via_defenses = CampaignSpec::builder(UarchConfig::default())
            .attacks(attacks::registry().iter().copied().take(3))
            .defenses(picked.clone())
            .build();
        let via_stacks = CampaignSpec::builder(UarchConfig::default())
            .attacks(attacks::registry().iter().copied().take(3))
            .defense_stacks(picked.into_iter().map(DefenseStack::single))
            .build();
        assert_eq!(via_defenses.fingerprint(), via_stacks.fingerprint());
        let a = CampaignMatrix::run(&via_defenses).unwrap();
        let b = CampaignMatrix::run(&via_stacks).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn progress_observer_sees_every_evaluated_task() {
        use std::sync::Mutex;
        let spec = small_spec(2);
        let events: Mutex<Vec<TaskEvent>> = Mutex::new(Vec::new());
        let observer = |e: TaskEvent| events.lock().unwrap().push(e);
        let (m, report) =
            CampaignMatrix::run_incremental_observed(&spec, None, Some(&observer)).unwrap();
        let seen = events.into_inner().unwrap();
        assert_eq!(seen.len(), spec.total_tasks());
        assert_eq!(report.evaluated, spec.total_tasks());
        // The completion counter covers 1..=total exactly once, and every
        // event names a real config slice.
        let mut completed: Vec<usize> = seen.iter().map(|e| e.completed).collect();
        completed.sort_unstable();
        assert_eq!(completed, (1..=spec.total_tasks()).collect::<Vec<_>>());
        assert!(seen.iter().all(|e| e.total == spec.total_tasks()));
        assert!(seen.iter().all(|e| e.config < spec.configs.len()));
        // A no-op incremental rerun reports nothing: nothing is evaluated.
        let again: Mutex<Vec<TaskEvent>> = Mutex::new(Vec::new());
        let observer = |e: TaskEvent| again.lock().unwrap().push(e);
        CampaignMatrix::run_incremental_observed(&spec, Some(&m), Some(&observer)).unwrap();
        assert!(again.into_inner().unwrap().is_empty());
    }

    #[test]
    fn diff_reports_flips_deltas_and_axis_changes() {
        let spec = small_spec(0);
        let m1 = CampaignMatrix::run(&spec).unwrap();
        // Identical runs: an empty diff, everything unchanged.
        let same = m1.diff(&CampaignMatrix::run(&spec).unwrap());
        assert!(same.is_empty(), "{}", same.to_text());
        assert_eq!(same.unchanged, spec.total_tasks());
        // A hardened base flips baselines (leak → no leak) and cells,
        // under the *same* config name.
        let hardened = CampaignSpec {
            configs: vec![NamedConfig::new(
                "baseline",
                UarchConfig::builder().nda(true).build(),
            )],
            ..small_spec(0)
        };
        let m2 = CampaignMatrix::run(&hardened).unwrap();
        let diff = m1.diff(&m2);
        assert!(!diff.is_empty());
        assert!(!diff.baseline_flips.is_empty());
        assert!(diff
            .baseline_flips
            .iter()
            .all(|b| b.from_leaked && !b.to_leaked));
        assert!(diff.added.is_empty());
        assert!(diff.removed.is_empty());
        let text = diff.to_text();
        assert!(text.starts_with("campaign diff:"));
        assert!(text.contains("baseline:"));
        // A different defense axis shows up as added + removed cells.
        let fewer = CampaignSpec {
            defenses: spec.defenses[..2].to_vec(),
            ..small_spec(0)
        };
        let m3 = CampaignMatrix::run(&fewer).unwrap();
        let diff = m1.diff(&m3);
        assert!(diff.added.is_empty());
        assert_eq!(diff.removed.len(), spec.attacks.len());
        assert!(diff.to_text().contains("removed:"));
    }
}
