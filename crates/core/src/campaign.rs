//! The campaign engine: batch evaluation of the full
//! attack × defense × configuration cube.
//!
//! The paper's deliverables are *matrices* — Table III's attack variants,
//! Figure 8's four strategies, Table II's defense catalog — and the seed
//! evaluated them one `(attack, defense)` pair at a time with hand-copied
//! attack lists in every binary. A campaign instead takes the registries
//! ([`attacks::registry`], [`defenses::registry`]) plus a list of named
//! machine configurations, evaluates every cell in parallel, and returns a
//! [`CampaignMatrix`] with deterministic ordering, lookups, the §V-B
//! "false sense of security" extraction, and JSON/CSV export.
//!
//! Work is distributed over `std::thread::scope` workers round-robin, and
//! results are reassembled by cell index, so the output is byte-identical
//! regardless of thread count or scheduling:
//!
//! ```
//! use specgraph::campaign::{CampaignMatrix, CampaignSpec};
//!
//! # fn main() -> Result<(), attacks::AttackError> {
//! let mut spec = CampaignSpec::default(); // full registries × baseline
//! spec.defenses.truncate(2);              // keep the doctest quick
//! spec.attacks.truncate(3);
//! let matrix = CampaignMatrix::run(&spec)?;
//! assert_eq!(matrix.shape(), (3, 2, 1));
//! assert!(matrix.cells().iter().all(|c| c.config == 0));
//! # Ok(())
//! # }
//! ```

use crate::scenario::{self, Evaluation};
use attacks::{Attack, AttackError, AttackInfo};
use defenses::{Defense, Verdict};
use std::fmt::Write as _;
use std::thread;
use tsg::NodeKind;
use uarch::UarchConfig;

/// A machine configuration with a human-readable name (one slice of the
/// campaign cube's third axis).
#[derive(Debug, Clone)]
pub struct NamedConfig {
    /// Display name, e.g. `"baseline"` or `"② NDA hardened"`.
    pub name: String,
    /// The simulator configuration evaluated under that name.
    pub config: UarchConfig,
}

impl NamedConfig {
    /// Names a configuration.
    pub fn new(name: impl Into<String>, config: UarchConfig) -> Self {
        NamedConfig {
            name: name.into(),
            config,
        }
    }
}

/// What to evaluate: the three axes of the cube plus the worker count.
#[derive(Debug)]
pub struct CampaignSpec {
    /// Attack axis; defaults to the full [`attacks::registry`].
    pub attacks: Vec<&'static dyn Attack>,
    /// Defense axis; defaults to the full [`defenses::registry`].
    pub defenses: Vec<Defense>,
    /// Configuration axis; defaults to one baseline machine.
    pub configs: Vec<NamedConfig>,
    /// Worker threads; `0` means "all available parallelism".
    pub threads: usize,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            attacks: attacks::registry().to_vec(),
            defenses: defenses::registry().to_vec(),
            configs: vec![NamedConfig::new("baseline", UarchConfig::default())],
            threads: 0,
        }
    }
}

impl CampaignSpec {
    /// Full registries over a single caller-chosen base configuration.
    #[must_use]
    pub fn with_base(base: &UarchConfig) -> Self {
        CampaignSpec {
            configs: vec![NamedConfig::new("base", base.clone())],
            ..CampaignSpec::default()
        }
    }

    /// Full registries swept over the baseline plus one globally hardened
    /// machine per Figure-8 strategy knob (①–④) — the configuration sweep
    /// behind the overhead/insufficiency discussions.
    #[must_use]
    pub fn strategy_sweep(base: &UarchConfig) -> Self {
        let knob = |name: &str, f: fn(&mut UarchConfig)| {
            let mut cfg = base.clone();
            f(&mut cfg);
            NamedConfig::new(name, cfg)
        };
        CampaignSpec {
            configs: vec![
                NamedConfig::new("baseline", base.clone()),
                knob("① no speculative loads", |c| {
                    c.no_speculative_loads = true
                }),
                knob("② NDA", |c| c.nda = true),
                knob("③ STT", |c| c.stt = true),
                knob("④ flush predictors", |c| {
                    c.flush_predictors_on_switch = true
                }),
            ],
            ..CampaignSpec::default()
        }
    }
}

/// One attack run with *no* defense on one configuration: the leak ground
/// truth (Table I/III rows), plus the Theorem-1 graph verdict.
#[derive(Debug, Clone)]
pub struct BaselineCell {
    /// Catalog metadata of the attack.
    pub info: AttackInfo,
    /// Index into [`CampaignMatrix::configs`].
    pub config: usize,
    /// Whether the attack recovered the planted secret.
    pub leaked: bool,
    /// The recovered symbol, if any.
    pub recovered: Option<u64>,
    /// Cycles the run consumed.
    pub cycles: u64,
    /// Theorem 1 on the variant's attack graph: does an authorization
    /// race with a secret access? (Answered from the graph's cached
    /// reachability index.)
    pub graph_race: bool,
}

/// One (attack, defense, configuration) evaluation.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Attack name (row).
    pub attack: &'static str,
    /// Defense name (column).
    pub defense: &'static str,
    /// Index into [`CampaignMatrix::configs`] (slice).
    pub config: usize,
    /// The two-level verdict for the cell.
    pub evaluation: Evaluation,
}

impl MatrixCell {
    /// The §V-B "false sense of security" pattern for this cell.
    #[must_use]
    pub fn false_sense_of_security(&self) -> bool {
        self.evaluation.false_sense_of_security()
    }
}

/// The evaluated cube, in deterministic attack-major order.
#[derive(Debug, Clone)]
pub struct CampaignMatrix {
    /// Attack axis metadata, in evaluation order.
    pub attacks: Vec<AttackInfo>,
    /// Defense axis, in evaluation order.
    pub defenses: Vec<Defense>,
    /// Configuration axis names, in evaluation order.
    pub configs: Vec<String>,
    /// Undefended runs: `attacks.len() × configs.len()`, attack-major.
    baselines: Vec<BaselineCell>,
    /// Defense evaluations: `attacks.len() × defenses.len() ×
    /// configs.len()`, ordered `((a·D)+d)·C + c`.
    cells: Vec<MatrixCell>,
}

enum TaskOut {
    Base(BaselineCell),
    Cell(MatrixCell),
}

/// Theorem 1 on one attack's graph: does an authorization race with a
/// secret access? Config-independent, so computed once per attack.
fn graph_race_of(attack: &dyn Attack) -> bool {
    let sa = attack.graph();
    let g = sa.graph();
    let idx = g.reachability();
    let auths = g.nodes_of_kind(NodeKind::is_authorization);
    let accesses = g.nodes_of_kind(NodeKind::is_secret_access);
    auths
        .iter()
        .any(|&a| accesses.iter().any(|&s| idx.races(a, s)))
}

fn run_task(
    spec: &CampaignSpec,
    graph_races: &[bool],
    task: usize,
) -> Result<TaskOut, AttackError> {
    let c = spec.configs.len();
    let d = spec.defenses.len();
    let base_tasks = spec.attacks.len() * c;
    if task < base_tasks {
        let attack = spec.attacks[task / c];
        let config = task % c;
        let out = attack.run(&spec.configs[config].config)?;
        Ok(TaskOut::Base(BaselineCell {
            info: attack.info(),
            config,
            leaked: out.leaked,
            recovered: out.recovered,
            cycles: out.cycles,
            graph_race: graph_races[task / c],
        }))
    } else {
        let j = task - base_tasks;
        let attack = spec.attacks[j / (d * c)];
        let defense = &spec.defenses[(j / c) % d];
        let config = j % c;
        let evaluation = scenario::evaluate(attack, defense, &spec.configs[config].config)?;
        Ok(TaskOut::Cell(MatrixCell {
            attack: evaluation.attack,
            defense: evaluation.defense,
            config,
            evaluation,
        }))
    }
}

impl CampaignMatrix {
    /// Evaluates the full cube described by `spec`.
    ///
    /// Tasks (one per baseline run, one per matrix cell) are dealt to
    /// scoped worker threads round-robin and reassembled by index, so the
    /// result — including cell order — is independent of scheduling.
    ///
    /// # Errors
    ///
    /// The first [`AttackError`] any simulation produced (by task order).
    ///
    /// # Panics
    ///
    /// Panics if a worker thread itself panics (i.e. a bug, not a
    /// simulation failure).
    pub fn run(spec: &CampaignSpec) -> Result<Self, AttackError> {
        let (a, d, c) = (spec.attacks.len(), spec.defenses.len(), spec.configs.len());
        let total = a * c + a * d * c;
        let threads = match spec.threads {
            0 => thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            t => t,
        }
        .min(total.max(1));

        // The graph verdict is config-independent: one closure build per
        // attack, shared by every config slice's baseline row.
        let graph_races: Vec<bool> = spec.attacks.iter().map(|at| graph_race_of(*at)).collect();

        let mut slots: Vec<Option<Result<TaskOut, AttackError>>> = Vec::new();
        slots.resize_with(total, || None);
        if threads <= 1 {
            for (task, slot) in slots.iter_mut().enumerate() {
                *slot = Some(run_task(spec, &graph_races, task));
            }
        } else {
            let graph_races = &graph_races;
            let worker = move |start: usize| {
                let mut out = Vec::new();
                let mut task = start;
                while task < total {
                    out.push((task, run_task(spec, graph_races, task)));
                    task += threads;
                }
                out
            };
            let batches = thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|start| scope.spawn(move || worker(start)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("campaign worker panicked"))
                    .collect::<Vec<_>>()
            });
            for batch in batches {
                for (task, result) in batch {
                    slots[task] = Some(result);
                }
            }
        }

        let mut baselines = Vec::with_capacity(a * c);
        let mut cells = Vec::with_capacity(a * d * c);
        for slot in slots {
            match slot.expect("every task ran")? {
                TaskOut::Base(b) => baselines.push(b),
                TaskOut::Cell(cell) => cells.push(cell),
            }
        }
        Ok(CampaignMatrix {
            attacks: spec.attacks.iter().map(|at| at.info()).collect(),
            defenses: spec.defenses.clone(),
            configs: spec.configs.iter().map(|nc| nc.name.clone()).collect(),
            baselines,
            cells,
        })
    }

    /// `(attacks, defenses, configs)` axis lengths.
    #[must_use]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.attacks.len(), self.defenses.len(), self.configs.len())
    }

    /// All matrix cells in deterministic attack-major order.
    #[must_use]
    pub fn cells(&self) -> &[MatrixCell] {
        &self.cells
    }

    /// All undefended baseline runs, attack-major.
    #[must_use]
    pub fn baselines(&self) -> &[BaselineCell] {
        &self.baselines
    }

    /// The cell for `(attack, defense)` under configuration index `config`.
    #[must_use]
    pub fn cell(&self, attack: &str, defense: &str, config: usize) -> Option<&MatrixCell> {
        let a = self.attacks.iter().position(|i| i.name == attack)?;
        let d = self.defenses.iter().position(|de| de.name == defense)?;
        if config >= self.configs.len() {
            return None;
        }
        self.cells
            .get((a * self.defenses.len() + d) * self.configs.len() + config)
    }

    /// The undefended run of `attack` under configuration index `config`.
    #[must_use]
    pub fn baseline(&self, attack: &str, config: usize) -> Option<&BaselineCell> {
        let a = self.attacks.iter().position(|i| i.name == attack)?;
        self.baselines.get(a * self.configs.len() + config)
    }

    /// The cells matching a predicate (e.g. one strategy, one verdict).
    pub fn filter(&self, pred: impl Fn(&MatrixCell) -> bool) -> Vec<&MatrixCell> {
        self.cells.iter().filter(|cell| pred(cell)).collect()
    }

    /// Every §V-B "false sense of security" cell: the strategy would close
    /// this attack's leak path, but the mechanism still leaked.
    #[must_use]
    pub fn false_senses(&self) -> Vec<&MatrixCell> {
        self.filter(MatrixCell::false_sense_of_security)
    }

    /// The matrix as CSV (`attack,defense,config,strategy,…`), one row per
    /// cell, deterministic order.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "attack,defense,config,strategy,strategy_sufficient,mechanism,false_sense\n",
        );
        for cell in &self.cells {
            let e = &cell.evaluation;
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{}",
                csv_field(cell.attack),
                csv_field(cell.defense),
                csv_field(&self.configs[cell.config]),
                strategy_token(e.strategy),
                e.strategy_sufficient
                    .map_or("n/a", |b| if b { "yes" } else { "no" }),
                verdict_token(e.mechanism),
                cell.false_sense_of_security(),
            );
        }
        out
    }

    /// The matrix as a JSON document (axes, baselines, cells).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"configs\": [");
        push_json_list(&mut out, self.configs.iter().map(String::as_str));
        out.push_str("],\n  \"attacks\": [");
        push_json_list(&mut out, self.attacks.iter().map(|i| i.name));
        out.push_str("],\n  \"defenses\": [");
        push_json_list(&mut out, self.defenses.iter().map(|d| d.name));
        out.push_str("],\n  \"baselines\": [");
        for (i, b) in self.baselines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"attack\": {}, \"config\": {}, \"leaked\": {}, \"cycles\": {}, \"graph_race\": {}}}",
                json_str(b.info.name),
                json_str(&self.configs[b.config]),
                b.leaked,
                b.cycles,
                b.graph_race,
            );
        }
        out.push_str("\n  ],\n  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let e = &cell.evaluation;
            let _ = write!(
                out,
                "\n    {{\"attack\": {}, \"defense\": {}, \"config\": {}, \"strategy\": {}, \"strategy_sufficient\": {}, \"mechanism\": {}, \"false_sense\": {}}}",
                json_str(cell.attack),
                json_str(cell.defense),
                json_str(&self.configs[cell.config]),
                json_str(strategy_token(e.strategy)),
                e.strategy_sufficient
                    .map_or_else(|| "null".to_owned(), |b| b.to_string()),
                json_str(verdict_token(e.mechanism)),
                cell.false_sense_of_security(),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Stable machine-readable token for a strategy.
#[must_use]
pub fn strategy_token(s: defenses::Strategy) -> &'static str {
    match s {
        defenses::Strategy::PreventAccess => "prevent_access",
        defenses::Strategy::PreventUse => "prevent_use",
        defenses::Strategy::PreventSend => "prevent_send",
        defenses::Strategy::ClearPredictions => "clear_predictions",
    }
}

/// Stable machine-readable token for a verdict.
#[must_use]
pub fn verdict_token(v: Verdict) -> &'static str {
    match v {
        Verdict::Blocked => "blocked",
        Verdict::Leaked => "leaked",
        Verdict::GraphOnly => "graph_only",
    }
}

fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ch if (ch as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", ch as u32);
            }
            ch => out.push(ch),
        }
    }
    out.push('"');
    out
}

fn push_json_list<'a>(out: &mut String, items: impl Iterator<Item = &'a str>) {
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(item));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(threads: usize) -> CampaignSpec {
        let mut spec = CampaignSpec::default();
        spec.attacks.truncate(4);
        spec.defenses.truncate(3);
        spec.threads = threads;
        spec
    }

    #[test]
    fn shape_and_order_are_attack_major() {
        let m = CampaignMatrix::run(&small_spec(2)).unwrap();
        assert_eq!(m.shape(), (4, 3, 1));
        assert_eq!(m.cells().len(), 12);
        assert_eq!(m.baselines().len(), 4);
        let mut expected = Vec::new();
        for a in &m.attacks {
            for d in &m.defenses {
                expected.push((a.name, d.name));
            }
        }
        let got: Vec<_> = m.cells().iter().map(|c| (c.attack, c.defense)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let serial = CampaignMatrix::run(&small_spec(1)).unwrap();
        let parallel = CampaignMatrix::run(&small_spec(4)).unwrap();
        assert_eq!(serial.to_csv(), parallel.to_csv());
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn lookups_resolve_cells_and_baselines() {
        let m = CampaignMatrix::run(&small_spec(0)).unwrap();
        let cell = m
            .cell(attacks::names::SPECTRE_V1, defenses::names::LFENCE, 0)
            .expect("cell exists");
        assert_eq!(cell.evaluation.mechanism, Verdict::Blocked);
        assert!(m.cell("nope", defenses::names::LFENCE, 0).is_none());
        assert!(m
            .cell(attacks::names::SPECTRE_V1, defenses::names::LFENCE, 9)
            .is_none());
        let b = m.baseline(attacks::names::SPECTRE_V1, 0).expect("baseline");
        assert!(b.leaked && b.graph_race);
        assert!(b.cycles > 0);
    }

    #[test]
    fn sweep_adds_config_axis() {
        let mut spec = CampaignSpec::strategy_sweep(&UarchConfig::default());
        spec.attacks.truncate(2);
        spec.defenses.truncate(1);
        let m = CampaignMatrix::run(&spec).unwrap();
        assert_eq!(m.shape(), (2, 1, 5));
        // Hardened slices must not report more leaks than the baseline.
        for a in &m.attacks {
            let base = m.baseline(a.name, 0).unwrap();
            let nda = m.baseline(a.name, 2).unwrap();
            assert!(base.leaked);
            assert!(!nda.leaked, "{} leaks under global NDA", a.name);
        }
    }

    #[test]
    fn exports_are_well_formed() {
        let m = CampaignMatrix::run(&small_spec(0)).unwrap();
        let csv = m.to_csv();
        assert_eq!(csv.lines().count(), 1 + 12);
        assert!(csv.starts_with("attack,defense,config,"));
        let json = m.to_json();
        assert!(json.contains("\"cells\""));
        assert_eq!(json.matches("{\"attack\"").count(), 12 + 4);
        // Escaping: a quote in a config name must not break the document.
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("plain"), "plain");
    }
}
