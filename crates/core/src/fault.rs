//! Deterministic fault injection for the artifact pipeline.
//!
//! Production campaigns die in boring ways: the process is killed after an
//! arbitrary write, a file is half-flushed, the disk fills, a rename never
//! lands. This module makes those deaths *injectable, seeded and replayable*
//! so the recovery paths ([`crate::serve::Scheduler`] resume, fuzz-corpus
//! reload, incremental matrix reuse) are exercised for **every** write prefix
//! of a run, not just one hand-crafted kill scenario.
//!
//! Three pieces:
//!
//! 1. [`write_atomic`] — the single choke point through which every campaign
//!    artifact (matrix JSON, chunk checkpoints, fuzz corpus) is persisted.
//!    Unarmed it is a plain crash-consistent tmp+rename write. Armed with a
//!    [`FaultPlan`] it counts writes and injects exactly one fault at the
//!    planned index, then behaves as if the process had died: every later
//!    write fails.
//! 2. [`crash_sweep`] — the harness: run a workload once fault-free to learn
//!    its write count `W` and oracle output, then re-run it `W` times, each
//!    time crashing at a different write index `k`, resuming, and asserting
//!    the recovered output is bit-identical to the oracle.
//! 3. [`PanickingAttack`] — a registry-wrapping test double whose simulation
//!    panics while armed, for driving the campaign quarantine path
//!    ([`crate::campaign::CellOutcome::Quarantined`]) end to end.
//!
//! Fault state is process-global (the write layer is called from deep inside
//! the campaign engine), so [`arm`]/[`observe`] also serialize armers: the
//! returned [`ArmedFault`] guard holds a global gate for its lifetime,
//! keeping concurrent tests from trampling each other's plans.

use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use attacks::{Attack, AttackError, AttackInfo, AttackOutcome};
use tsg::SecurityAnalysis;
use uarch::Machine;

// ---------------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------------

/// The way a planned write fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// The write itself lands completely — the process dies immediately
    /// after. Models `kill -9` between two artifact saves.
    CrashAfterWrite,
    /// A prefix of the payload reaches the *destination* path and nothing
    /// more. Models a non-atomic writer (or a filesystem without atomic
    /// rename) killed mid-`write(2)` — the on-disk file is torn.
    TornWrite,
    /// Nothing reaches disk; the write fails with an out-of-space error.
    Enospc,
    /// The temporary file is fully written but the publishing rename never
    /// happens: the destination keeps its old contents (or stays absent) and
    /// a stray `.tmp` sibling is left behind.
    FailedRename,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultKind::CrashAfterWrite => "crash-after-write",
            FaultKind::TornWrite => "torn-write",
            FaultKind::Enospc => "enospc",
            FaultKind::FailedRename => "failed-rename",
        };
        f.write_str(name)
    }
}

/// A replayable plan: fail write number `at` (0-based) with `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    kind: FaultKind,
    at: usize,
}

impl FaultPlan {
    /// Crash immediately after write `k` completes.
    #[must_use]
    pub fn crash_after(k: usize) -> Self {
        FaultPlan {
            kind: FaultKind::CrashAfterWrite,
            at: k,
        }
    }

    /// Tear write `k`: only a prefix reaches the destination.
    #[must_use]
    pub fn torn(k: usize) -> Self {
        FaultPlan {
            kind: FaultKind::TornWrite,
            at: k,
        }
    }

    /// Fail write `k` with an out-of-space error, leaving no trace on disk.
    #[must_use]
    pub fn enospc(k: usize) -> Self {
        FaultPlan {
            kind: FaultKind::Enospc,
            at: k,
        }
    }

    /// Write the temporary file for write `k` but never rename it over the
    /// destination.
    #[must_use]
    pub fn failed_rename(k: usize) -> Self {
        FaultPlan {
            kind: FaultKind::FailedRename,
            at: k,
        }
    }

    /// A seeded plan for write `k`: the fault kind is chosen by hashing
    /// `(seed, k)`, so a sweep over `k = 0..writes` with a fixed seed
    /// exercises a deterministic, replayable mix of all four kinds.
    #[must_use]
    pub fn seeded(seed: u64, k: usize) -> Self {
        let kind = match splitmix(seed ^ (k as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 4 {
            0 => FaultKind::CrashAfterWrite,
            1 => FaultKind::TornWrite,
            2 => FaultKind::Enospc,
            _ => FaultKind::FailedRename,
        };
        FaultPlan { kind, at: k }
    }

    /// The fault kind this plan injects.
    #[must_use]
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// The 0-based write index at which the fault fires.
    #[must_use]
    pub fn at(&self) -> usize {
        self.at
    }
}

/// One round of splitmix64 — enough mixing to spread `(seed, k)` over the
/// four fault kinds without any external RNG dependency.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Global armed state
// ---------------------------------------------------------------------------

struct ArmedState {
    plan: Option<FaultPlan>,
    writes: usize,
    fired: bool,
    crashed: bool,
}

static ARMED: Mutex<Option<ArmedState>> = Mutex::new(None);
/// Serializes armers: only one `ArmedFault` guard exists at a time, so
/// concurrent tests cannot observe each other's write counts or plans.
static GATE: Mutex<()> = Mutex::new(());

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic while armed (e.g. an assertion failure in a sweep closure)
    // poisons the mutex; the state itself is still coherent, so recover it.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Guard for an armed fault plan (or a plan-less observation). While alive it
/// owns the process-global fault slot; dropping it disarms and resets the
/// write counter.
#[derive(Debug)]
pub struct ArmedFault {
    _gate: MutexGuard<'static, ()>,
}

impl ArmedFault {
    /// Number of writes [`write_atomic`] has seen since arming.
    #[must_use]
    pub fn writes(&self) -> usize {
        lock(&ARMED).as_ref().map_or(0, |s| s.writes)
    }

    /// Whether the planned fault has fired.
    #[must_use]
    pub fn fired(&self) -> bool {
        lock(&ARMED).as_ref().is_some_and(|s| s.fired)
    }
}

impl Drop for ArmedFault {
    fn drop(&mut self) {
        *lock(&ARMED) = None;
    }
}

/// Arm `plan`: the `plan.at()`-th call to [`write_atomic`] (0-based) fails
/// with `plan.kind()`, after which every further write fails as if the
/// process had crashed. Blocks until any other armed guard is dropped.
#[must_use]
pub fn arm(plan: FaultPlan) -> ArmedFault {
    arm_state(Some(plan))
}

/// Arm in observation-only mode: writes are counted (see
/// [`ArmedFault::writes`]) but never fail. Used by [`crash_sweep`] to learn a
/// workload's write count before sweeping it.
#[must_use]
pub fn observe() -> ArmedFault {
    arm_state(None)
}

fn arm_state(plan: Option<FaultPlan>) -> ArmedFault {
    let gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
    *lock(&ARMED) = Some(ArmedState {
        plan,
        writes: 0,
        fired: false,
        crashed: false,
    });
    ArmedFault { _gate: gate }
}

// ---------------------------------------------------------------------------
// Injected errors
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct InjectedFault {
    kind: FaultKind,
    write: usize,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FaultKind::Enospc => write!(
                f,
                "injected fault: no space left on device at write #{}",
                self.write
            ),
            kind => write!(f, "injected fault: {kind} at write #{}", self.write),
        }
    }
}

impl Error for InjectedFault {}

#[derive(Debug)]
struct CrashedProcess;

impl fmt::Display for CrashedProcess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("injected fault: process already crashed; write refused")
    }
}

impl Error for CrashedProcess {}

/// Whether an I/O error was injected by this module (as opposed to a real
/// filesystem failure). Lets harness code distinguish "the planned fault
/// fired" from "something actually broke".
#[must_use]
pub fn is_injected(err: &io::Error) -> bool {
    err.get_ref()
        .is_some_and(|inner| inner.is::<InjectedFault>() || inner.is::<CrashedProcess>())
}

// ---------------------------------------------------------------------------
// The write choke point
// ---------------------------------------------------------------------------

/// What the armed state tells this write to do. Computed under the lock,
/// executed outside it (no filesystem work while holding the mutex).
enum WriteAction {
    Plain,
    Refused,
    Fault(FaultKind, usize),
}

fn next_action() -> WriteAction {
    let mut guard = lock(&ARMED);
    let Some(state) = guard.as_mut() else {
        return WriteAction::Plain;
    };
    let index = state.writes;
    state.writes += 1;
    if state.crashed {
        return WriteAction::Refused;
    }
    match state.plan {
        Some(plan) if plan.at == index => {
            state.fired = true;
            state.crashed = true;
            WriteAction::Fault(plan.kind, index)
        }
        _ => WriteAction::Plain,
    }
}

/// Crash-consistent artifact write: the payload lands at `path` completely or
/// not at all, via a same-directory `.tmp` sibling and an atomic rename.
///
/// This is the single write path for every campaign artifact — matrix JSON,
/// scheduler chunk checkpoints, the fuzz corpus — which is what makes a
/// [`FaultPlan`] armed via [`arm`] able to fail *any* write in a run:
///
/// * [`FaultKind::CrashAfterWrite`] — this write succeeds, all later ones
///   fail (`Ok` is returned here).
/// * [`FaultKind::TornWrite`] — a prefix of the payload is written directly
///   to `path` (bypassing the rename), then the error is returned.
/// * [`FaultKind::Enospc`] — nothing is written; an out-of-space-flavoured
///   error is returned.
/// * [`FaultKind::FailedRename`] — the `.tmp` file is fully written but the
///   rename is skipped; the destination keeps its previous state.
///
/// # Errors
///
/// Real filesystem errors from creating, writing or renaming the temporary
/// file, or an injected error ([`is_injected`]) when an armed plan fires.
pub fn write_atomic(path: impl AsRef<Path>, contents: &str) -> io::Result<()> {
    let path = path.as_ref();
    match next_action() {
        WriteAction::Plain => plain_atomic(path, contents),
        WriteAction::Refused => Err(io::Error::other(CrashedProcess)),
        WriteAction::Fault(kind, write) => {
            let injected = || io::Error::other(InjectedFault { kind, write });
            match kind {
                FaultKind::CrashAfterWrite => plain_atomic(path, contents),
                FaultKind::TornWrite => {
                    fs::write(path, &contents.as_bytes()[..contents.len() / 2])?;
                    Err(injected())
                }
                FaultKind::Enospc => Err(injected()),
                FaultKind::FailedRename => {
                    fs::write(tmp_path(path), contents)?;
                    Err(injected())
                }
            }
        }
    }
}

fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map_or_else(Default::default, |n| n.to_owned());
    name.push(".tmp");
    path.with_file_name(name)
}

fn plain_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = tmp_path(path);
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// Crash sweep
// ---------------------------------------------------------------------------

/// Result of a full [`crash_sweep`]: how many write points were swept and
/// how many injected faults actually fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepReport {
    /// Write count of the fault-free oracle run — one sweep case per write.
    pub writes: usize,
    /// Injected faults that fired across the sweep (crash-after-write at the
    /// final write index completes the run, so this can be < `writes`).
    pub fired: usize,
}

/// Prove a workload is crash-consistent at **every** write prefix.
///
/// The contract, for three closures over the same on-disk workspace:
///
/// * `fresh()` — wipe the workspace back to a blank slate;
/// * `attempt()` — run the workload end to end and return the final artifact
///   bytes (it runs with a fault armed, so it may fail);
/// * `resume(k)` — re-run the workload *without* wiping (faults disarmed),
///   returning the final artifact bytes; `k` is the write index that was
///   faulted, for error reporting. Callers put their "zero re-simulated
///   cells" assertions inside this closure, returning `Err` to fail the
///   sweep.
///
/// The harness first runs `fresh` + `attempt` under [`observe`] to learn the
/// write count `W` and the oracle bytes. Then for each `k in 0..W` it wipes,
/// arms [`FaultPlan::seeded`]`(seed, k)`, attempts, resumes if the attempt
/// died, and requires the surviving bytes to be bit-identical to the oracle.
///
/// # Errors
///
/// A message naming the failing write index and fault kind when any sweep
/// case diverges from the oracle (or when oracle/resume runs themselves
/// fail).
pub fn crash_sweep<E: fmt::Display>(
    seed: u64,
    mut fresh: impl FnMut() -> Result<(), E>,
    mut attempt: impl FnMut() -> Result<Vec<u8>, E>,
    mut resume: impl FnMut(usize) -> Result<Vec<u8>, E>,
) -> Result<SweepReport, String> {
    fresh().map_err(|e| format!("crash sweep: initial wipe failed: {e}"))?;
    let (oracle, writes) = {
        let guard = observe();
        let bytes =
            attempt().map_err(|e| format!("crash sweep: fault-free oracle run failed: {e}"))?;
        (bytes, guard.writes())
    };

    let mut fired = 0;
    for k in 0..writes {
        let plan = FaultPlan::seeded(seed, k);
        fresh().map_err(|e| format!("crash sweep: wipe before write #{k} failed: {e}"))?;
        let outcome = {
            let guard = arm(plan);
            let outcome = attempt();
            if guard.fired() {
                fired += 1;
            }
            outcome
        };
        let bytes = match outcome {
            Ok(bytes) => bytes,
            Err(_) => resume(k).map_err(|e| {
                format!(
                    "crash sweep: resume after {} at write #{k} failed: {e}",
                    plan.kind()
                )
            })?,
        };
        if bytes != oracle {
            return Err(format!(
                "crash sweep: output diverged from oracle after {} at write #{k}",
                plan.kind()
            ));
        }
    }
    Ok(SweepReport { writes, fired })
}

// ---------------------------------------------------------------------------
// Panicking attack double
// ---------------------------------------------------------------------------

/// A registry-wrapping [`Attack`] whose simulation panics while armed.
///
/// Catalog metadata and the attack graph pass through to the wrapped attack
/// unchanged — only `run_in` is hijacked — so a campaign over a
/// `PanickingAttack` exercises exactly the quarantine path: graph verdicts
/// stay available while the machine-truth cell degrades to
/// [`crate::campaign::CellOutcome::Quarantined`]. Call [`disarm`] and re-run
/// to drive the incremental-healing path.
///
/// [`disarm`]: PanickingAttack::disarm
#[derive(Debug)]
pub struct PanickingAttack {
    inner: &'static dyn Attack,
    armed: AtomicBool,
}

impl PanickingAttack {
    /// Wrap `inner`, armed. The double is leaked to `'static` so it can sit
    /// in a [`crate::campaign::CampaignSpec`] attack list.
    #[must_use]
    pub fn wrap(inner: &'static dyn Attack) -> &'static Self {
        Box::leak(Box::new(PanickingAttack {
            inner,
            armed: AtomicBool::new(true),
        }))
    }

    /// Re-arm the fault: subsequent simulations panic.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Remove the fault: subsequent simulations delegate to the wrapped
    /// attack, allowing quarantined cells to heal on the next run.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Whether the next simulation will panic.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }
}

impl Attack for PanickingAttack {
    fn info(&self) -> AttackInfo {
        self.inner.info()
    }

    fn graph(&self) -> SecurityAnalysis {
        self.inner.graph()
    }

    fn run_in(&self, m: &mut Machine) -> Result<AttackOutcome, AttackError> {
        if self.is_armed() {
            panic!(
                "injected fault: {} simulation panicked",
                self.inner.info().name
            );
        }
        self.inner.run_in(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("specgraph-fault-{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn unarmed_write_is_atomic_and_clean() {
        let path = dir().join("plain.json");
        write_atomic(&path, "{\"ok\": true}").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"ok\": true}");
        assert!(!tmp_path(&path).exists());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn seeded_plans_are_replayable_and_mixed() {
        let a: Vec<_> = (0..32).map(|k| FaultPlan::seeded(7, k).kind()).collect();
        let b: Vec<_> = (0..32).map(|k| FaultPlan::seeded(7, k).kind()).collect();
        assert_eq!(a, b);
        for kind in [
            FaultKind::CrashAfterWrite,
            FaultKind::TornWrite,
            FaultKind::Enospc,
            FaultKind::FailedRename,
        ] {
            assert!(a.contains(&kind), "seed 7 never produces {kind}");
        }
    }

    #[test]
    fn each_fault_kind_leaves_its_signature_on_disk() {
        let d = dir();
        let payload = "{\"version\": 7, \"cells\": [1, 2, 3]}";

        // Torn write: destination holds a strict prefix.
        let torn = d.join("torn.json");
        {
            let _g = arm(FaultPlan::torn(0));
            let err = write_atomic(&torn, payload).unwrap_err();
            assert!(is_injected(&err), "{err}");
        }
        let got = fs::read_to_string(&torn).unwrap();
        assert_eq!(got, &payload[..payload.len() / 2]);

        // ENOSPC: destination untouched.
        let gone = d.join("enospc.json");
        {
            let _g = arm(FaultPlan::enospc(0));
            assert!(write_atomic(&gone, payload).is_err());
        }
        assert!(!gone.exists());

        // Failed rename: tmp present, destination absent.
        let lost = d.join("lost.json");
        {
            let _g = arm(FaultPlan::failed_rename(0));
            assert!(write_atomic(&lost, payload).is_err());
        }
        assert!(!lost.exists());
        assert_eq!(fs::read_to_string(tmp_path(&lost)).unwrap(), payload);

        // Crash-after: this write lands, the next is refused.
        let last = d.join("last.json");
        let after = d.join("after.json");
        {
            let g = arm(FaultPlan::crash_after(0));
            write_atomic(&last, payload).unwrap();
            let err = write_atomic(&after, payload).unwrap_err();
            assert!(is_injected(&err));
            assert_eq!(g.writes(), 2);
            assert!(g.fired());
        }
        assert_eq!(fs::read_to_string(&last).unwrap(), payload);
        assert!(!after.exists());

        for p in [torn, lost, tmp_path(&d.join("lost.json")), last] {
            let _ = fs::remove_file(p);
        }
    }

    #[test]
    fn observe_counts_without_failing() {
        let d = dir();
        let p = d.join("observed.json");
        let g = observe();
        write_atomic(&p, "1").unwrap();
        write_atomic(&p, "2").unwrap();
        assert_eq!(g.writes(), 2);
        assert!(!g.fired());
        drop(g);
        let _ = fs::remove_file(p);
    }

    #[test]
    fn crash_sweep_passes_on_a_two_write_workload() {
        let d = dir().join("sweep-two-write");
        let a = d.join("a.json");
        let b = d.join("b.json");
        let report = crash_sweep::<io::Error>(
            11,
            || {
                let _ = fs::remove_dir_all(&d);
                fs::create_dir_all(&d)
            },
            || {
                write_atomic(&a, "alpha")?;
                write_atomic(&b, "beta")?;
                Ok(b"alphabeta".to_vec())
            },
            |_k| {
                // Resume: redo whichever writes didn't land (both are
                // idempotent, so just redo any missing/damaged one).
                for (p, want) in [(&a, "alpha"), (&b, "beta")] {
                    if fs::read_to_string(p).ok().as_deref() != Some(want) {
                        write_atomic(p, want)?;
                    }
                }
                Ok(b"alphabeta".to_vec())
            },
        )
        .expect("sweep passes");
        assert_eq!(report.writes, 2);
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn panicking_attack_delegates_metadata_and_panics_armed() {
        let inner = attacks::find(attacks::names::MELTDOWN).expect("registry attack");
        let double = PanickingAttack::wrap(inner);
        assert_eq!(double.info().name, inner.info().name);
        assert!(double.is_armed());
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let cfg = uarch::UarchConfig::default();
            let _ = double.run(&cfg);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault"), "{msg}");
        double.disarm();
        let out = double
            .run(&uarch::UarchConfig::default())
            .expect("delegates");
        assert!(out.leaked);
    }
}
