//! Program patching: the "add security dependency" box of Figure 9.
//!
//! Two software patches are provided:
//!
//! * [`patch_with_fences`]: insert an `LFENCE` after each Spectre-type
//!   gadget's authorization (defense strategy ①, the LFENCE row of
//!   Table II);
//! * [`mask_index`]: coarse address masking — constrain the index register
//!   after the bounds check (the V8/Linux mitigation of Table II).

use crate::gadget::{Gadget, GadgetClass};
use crate::AnalyzerError;
use isa::{AluOp, Instruction, Operand, Program, Reg};

/// Inserts `inst` at position `pos`, shifting later instructions and
/// remapping every control-flow target and label.
///
/// # Errors
///
/// [`AnalyzerError::Program`] if the rebuilt program fails validation.
pub fn insert_at(
    program: &Program,
    pos: usize,
    inst: Instruction,
) -> Result<Program, AnalyzerError> {
    let remap = |t: usize| if t >= pos { t + 1 } else { t };
    let mut insts: Vec<Instruction> = Vec::with_capacity(program.len() + 1);
    for (pc, old) in program.iter() {
        if pc == pos {
            insts.push(inst);
        }
        let new = match *old {
            Instruction::BranchIf { cond, a, b, target } => Instruction::BranchIf {
                cond,
                a,
                b,
                target: remap(target),
            },
            Instruction::Jump { target } => Instruction::Jump {
                target: remap(target),
            },
            Instruction::Call { target } => Instruction::Call {
                target: remap(target),
            },
            other => other,
        };
        insts.push(new);
    }
    if pos == program.len() {
        insts.push(inst);
    }
    Program::from_instructions(insts).map_err(AnalyzerError::Program)
}

/// Inserts an `LFENCE` immediately after each Spectre-type gadget's
/// authorization. Meltdown-type gadgets are left untouched: their race is
/// *inside* one instruction, where no software fence can reach — the
/// paper's argument that they need hardware (eager-check) fixes.
///
/// # Errors
///
/// [`AnalyzerError::Program`] if reconstruction fails.
pub fn patch_with_fences(program: &Program, gadgets: &[Gadget]) -> Result<Program, AnalyzerError> {
    let mut positions: Vec<usize> = gadgets
        .iter()
        .filter(|g| g.class == GadgetClass::SpectreType)
        .map(|g| g.auth_pc + 1)
        .collect();
    positions.sort_unstable();
    positions.dedup();
    let mut p = program.clone();
    // Insert from the back so earlier positions stay valid.
    for &pos in positions.iter().rev() {
        p = insert_at(&p, pos, Instruction::Fence(isa::FenceKind::LFence))?;
    }
    Ok(p)
}

/// SABC-style serialization ("Secure Automatic Bounds Checking", §V-B):
/// inserts, at `pos` (right after the bounds check), two arithmetic
/// instructions that tie the gadget's index register to the *slow* bound
/// value without changing any architectural result:
///
/// ```text
/// sub scratch, slow, slow   ; always 0, but data-depends on `slow`
/// or  tie, tie, scratch     ; `tie` unchanged, now waits for `slow`
/// ```
///
/// The transient access's address now cannot be computed before the bound
/// arrives — and by then the branch has resolved. Prevention by data
/// dependency instead of a fence: cheaper, same ordering effect.
///
/// Note the sound over-approximation at the graph level: the generated
/// attack graph still reports the branch/access race (the inserted
/// ordering runs through the bound's *producer*, not the branch node);
/// the executable verification shows the leak is gone.
///
/// # Errors
///
/// [`AnalyzerError::Program`] if reconstruction fails.
pub fn sabc_serialize(
    program: &Program,
    pos: usize,
    tie: Reg,
    slow: Reg,
    scratch: Reg,
) -> Result<Program, AnalyzerError> {
    let p = insert_at(
        program,
        pos,
        Instruction::Alu {
            op: AluOp::Sub,
            dst: scratch,
            a: slow,
            b: Operand::Reg(slow),
        },
    )?;
    insert_at(
        &p,
        pos + 1,
        Instruction::Alu {
            op: AluOp::Or,
            dst: tie,
            a: tie,
            b: Operand::Reg(scratch),
        },
    )
}

/// Coarse address masking: inserts `and index, index, mask` at `pos`
/// (typically right after the bounds check), so out-of-bounds indices are
/// unrepresentable even transiently.
///
/// # Errors
///
/// [`AnalyzerError::Program`] if reconstruction fails.
pub fn mask_index(
    program: &Program,
    pos: usize,
    index: Reg,
    mask: u64,
) -> Result<Program, AnalyzerError> {
    insert_at(
        program,
        pos,
        Instruction::Alu {
            op: AluOp::And,
            dst: index,
            a: index,
            b: Operand::Imm(mask),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnalysisConfig, Analyzer};
    use isa::asm;

    #[test]
    fn insert_remaps_targets() {
        let p = asm::assemble("bge r0, r4, out\nnop\nout: halt").unwrap();
        let p2 = insert_at(&p, 1, Instruction::Nop).unwrap();
        assert_eq!(p2.len(), 4);
        match p2[0] {
            Instruction::BranchIf { target, .. } => assert_eq!(target, 3),
            ref other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn insert_before_target_keeps_earlier_targets() {
        let p = asm::assemble("top: nop\nbge r0, r4, top\nhalt").unwrap();
        let p2 = insert_at(&p, 2, Instruction::Nop).unwrap();
        match p2[1] {
            Instruction::BranchIf { target, .. } => assert_eq!(target, 0),
            ref other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn insert_at_end() {
        let p = asm::assemble("nop\nhalt").unwrap();
        let p2 = insert_at(&p, 2, Instruction::Nop).unwrap();
        assert_eq!(p2.len(), 3);
        assert_eq!(p2[2], Instruction::Nop);
    }

    #[test]
    fn fence_patch_secures_spectre_gadget() {
        let p = asm::assemble(
            "load r4, [r2]\nbge r0, r4, out\nload r6, [r5]\nadd r7, r6, r3\nload r8, [r7]\nout: halt",
        )
        .unwrap();
        let a = Analyzer::new(AnalysisConfig::default());
        let report = a.analyze(&p).unwrap();
        assert!(!report.vulnerabilities.is_empty());
        let patched = report.patch_with_fences(&p).unwrap();
        assert_eq!(patched.len(), p.len() + 1);
        assert_eq!(patched[2], Instruction::Fence(isa::FenceKind::LFence));
        let report2 = a.analyze(&patched).unwrap();
        assert!(report2.vulnerabilities.is_empty());
    }

    #[test]
    fn meltdown_gadget_not_fence_patchable() {
        let p = asm::assemble("load r6, [r5]\nload r8, [r6]\nhalt").unwrap();
        let a = Analyzer::new(AnalysisConfig {
            user_mode: true,
            ..AnalysisConfig::default()
        });
        let report = a.analyze(&p).unwrap();
        assert!(!report.vulnerabilities.is_empty());
        let patched = report.patch_with_fences(&p).unwrap();
        // Unchanged: software fences cannot order micro-ops of one
        // instruction.
        assert_eq!(patched.len(), p.len());
        let report2 = a.analyze(&patched).unwrap();
        assert!(!report2.vulnerabilities.is_empty());
    }

    #[test]
    fn sabc_inserts_dependency_chain() {
        let p = asm::assemble(
            "bge r0, r4, out
load r6, [r5]
out: halt",
        )
        .unwrap();
        let p2 = sabc_serialize(&p, 1, Reg::R5, Reg::R4, Reg::R13).unwrap();
        assert_eq!(p2.len(), p.len() + 2);
        assert_eq!(
            p2[1],
            Instruction::Alu {
                op: AluOp::Sub,
                dst: Reg::R13,
                a: Reg::R4,
                b: Operand::Reg(Reg::R4)
            }
        );
        assert_eq!(
            p2[2],
            Instruction::Alu {
                op: AluOp::Or,
                dst: Reg::R5,
                a: Reg::R5,
                b: Operand::Reg(Reg::R13)
            }
        );
        // The branch target was remapped past both insertions.
        match p2[0] {
            Instruction::BranchIf { target, .. } => assert_eq!(target, 4),
            ref other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn mask_insertion() {
        let p = asm::assemble("bge r0, r4, out\nload r6, [r5]\nout: halt").unwrap();
        let p2 = mask_index(&p, 1, Reg::R0, 0x7).unwrap();
        assert_eq!(
            p2[1],
            Instruction::Alu {
                op: AluOp::And,
                dst: Reg::R0,
                a: Reg::R0,
                b: Operand::Imm(7)
            }
        );
    }
}
