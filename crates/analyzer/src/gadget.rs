//! Gadget detection: authorization → access → use → send chains.

use crate::dataflow::ValueFlow;
use crate::AnalysisConfig;
use isa::{Instruction, Program};
use std::fmt;

/// Whether the gadget's authorization is a separate instruction or a
/// micro-op of the access itself (the paper's Insight 6 split, which
/// decides the modeling level in Figure 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GadgetClass {
    /// Authorization is a prior branch/indirect-jump/return.
    SpectreType,
    /// Authorization is the access instruction's own permission check.
    MeltdownType,
}

impl fmt::Display for GadgetClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GadgetClass::SpectreType => "Spectre-type",
            GadgetClass::MeltdownType => "Meltdown-type",
        })
    }
}

/// One detected speculation gadget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gadget {
    /// Inter- or intra-instruction authorization.
    pub class: GadgetClass,
    /// The authorization instruction (equals `access_pc` for
    /// Meltdown-type).
    pub auth_pc: usize,
    /// The potential secret access.
    pub access_pc: usize,
    /// Instructions transforming the accessed value en route to the send.
    pub use_pcs: Vec<usize>,
    /// The covert send: a memory operation whose address derives from the
    /// accessed value.
    pub send_pc: usize,
}

impl fmt::Display for Gadget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} gadget: auth@{} access@{} send@{}",
            self.class, self.auth_pc, self.access_pc, self.send_pc
        )
    }
}

fn is_secret_read(inst: &Instruction) -> bool {
    matches!(
        inst,
        Instruction::Load { .. } | Instruction::ReadMsr { .. } | Instruction::FpMove { .. }
    )
}

fn is_software_authorization(inst: &Instruction) -> bool {
    matches!(
        inst,
        Instruction::BranchIf { .. } | Instruction::JumpIndirect { .. } | Instruction::Ret
    )
}

/// Finds, for access `access_pc`, the earliest later memory operation whose
/// address derives from the accessed value, plus the intermediate uses.
fn find_send(program: &Program, vf: &ValueFlow, access_pc: usize) -> Option<(Vec<usize>, usize)> {
    let mut uses = Vec::new();
    for (pc, inst) in program.iter().skip(access_pc + 1) {
        if inst.is_memory() && vf.address_depends_on_load(pc, access_pc) {
            return Some((uses, pc));
        }
        if !inst.is_memory()
            && inst.destination().is_some()
            && vf.load_roots(pc).contains(&access_pc)
        {
            uses.push(pc);
        }
    }
    None
}

/// The Figure-9 node-finding steps: authorization instructions, secret
/// accesses, covert sends.
#[must_use]
pub fn find_gadgets(program: &Program, config: &AnalysisConfig) -> Vec<Gadget> {
    let vf = ValueFlow::compute(program);
    let mut gadgets = Vec::new();

    for (pc, inst) in program.iter() {
        if !is_secret_read(inst) {
            continue;
        }
        let Some((use_pcs, send_pc)) = find_send(program, &vf, pc) else {
            continue;
        };
        // Meltdown-type: the access itself can fault (user mode, or
        // explicitly marked protected).
        let may_fault = (config.user_mode
            && matches!(
                inst,
                Instruction::Load { .. } | Instruction::ReadMsr { .. } | Instruction::FpMove { .. }
            ))
            || config.protected_accesses.contains(&pc);
        if may_fault {
            gadgets.push(Gadget {
                class: GadgetClass::MeltdownType,
                auth_pc: pc,
                access_pc: pc,
                use_pcs: use_pcs.clone(),
                send_pc,
            });
        }
        // Spectre-type: the closest preceding software authorization.
        let auth = (0..pc)
            .rev()
            .find(|&a| is_software_authorization(&program[a]));
        if let Some(auth_pc) = auth {
            gadgets.push(Gadget {
                class: GadgetClass::SpectreType,
                auth_pc,
                access_pc: pc,
                use_pcs,
                send_pc,
            });
        }
    }
    gadgets
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::asm;

    #[test]
    fn spectre_v1_shape_detected() {
        let p = asm::assemble(
            r"
            load r4, [r2]
            bge  r0, r4, out
            shl  r5, r0, 3
            add  r5, r5, r1
            load r6, [r5]
            mul  r7, r6, 0x1040
            add  r7, r7, r3
            load r8, [r7]
        out:
            halt",
        )
        .unwrap();
        let g = find_gadgets(&p, &AnalysisConfig::default());
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].class, GadgetClass::SpectreType);
        assert_eq!(g[0].auth_pc, 1);
        assert_eq!(g[0].access_pc, 4);
        assert_eq!(g[0].use_pcs, vec![5, 6]);
        assert_eq!(g[0].send_pc, 7);
        assert!(g[0].to_string().contains("auth@1"));
    }

    #[test]
    fn meltdown_shape_detected_in_user_mode() {
        let p =
            asm::assemble("load r6, [r5]\nmul r7, r6, 0x1040\nadd r7, r7, r3\nload r8, [r7]\nhalt")
                .unwrap();
        let cfg = AnalysisConfig {
            user_mode: true,
            ..AnalysisConfig::default()
        };
        let g = find_gadgets(&p, &cfg);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].class, GadgetClass::MeltdownType);
        assert_eq!(g[0].auth_pc, g[0].access_pc);
        // The same program in kernel mode has no authorization to bypass.
        assert!(find_gadgets(&p, &AnalysisConfig::default()).is_empty());
    }

    #[test]
    fn protected_marking_forces_meltdown_type() {
        let p = asm::assemble("load r6, [r5]\nload r8, [r6]\nhalt").unwrap();
        let cfg = AnalysisConfig {
            user_mode: false,
            protected_accesses: vec![0],
        };
        let g = find_gadgets(&p, &cfg);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].class, GadgetClass::MeltdownType);
    }

    #[test]
    fn load_without_dependent_send_is_not_a_gadget() {
        let p = asm::assemble("bge r0, r4, out\nload r6, [r5]\nadd r7, r6, 1\nout: halt").unwrap();
        assert!(find_gadgets(&p, &AnalysisConfig::default()).is_empty());
    }

    #[test]
    fn both_classes_reported_for_branch_plus_fault() {
        // A user-mode load behind a branch races with *two* authorizations:
        // the branch resolution and its own permission check.
        let p = asm::assemble("bge r0, r4, out\nload r6, [r5]\nload r8, [r6]\nout: halt").unwrap();
        let cfg = AnalysisConfig {
            user_mode: true,
            ..AnalysisConfig::default()
        };
        let g = find_gadgets(&p, &cfg);
        assert_eq!(g.len(), 2);
        assert!(g.iter().any(|x| x.class == GadgetClass::MeltdownType));
        assert!(g.iter().any(|x| x.class == GadgetClass::SpectreType));
    }

    #[test]
    fn indirect_jump_and_ret_are_authorizations() {
        let p = asm::assemble("jmpi r1\nload r6, [r5]\nload r8, [r6]\nhalt").unwrap();
        let g = find_gadgets(&p, &AnalysisConfig::default());
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].auth_pc, 0);

        let p = asm::assemble("ret\nload r6, [r5]\nload r8, [r6]\nhalt").unwrap();
        let g = find_gadgets(&p, &AnalysisConfig::default());
        assert_eq!(g.len(), 1);
    }
}
