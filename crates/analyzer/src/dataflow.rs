//! Register def-use dataflow over straight-line program order.
//!
//! The tool needs two facts per instruction: which earlier instruction
//! produced each source register (def-use edges = the attack graph's data
//! dependencies), and whether a value *derived from a load* flows into a
//! later memory address (the access→use→send chain).

use isa::{Instruction, Program, Reg};
use std::collections::HashMap;

/// Def-use and taint information for one program.
///
/// The analysis is a single forward pass in program order. Branches are
/// treated as non-killing (both paths continue with the same definitions):
/// this over-approximates flows, which is the safe direction for a
/// vulnerability finder.
#[derive(Debug, Clone)]
pub struct ValueFlow {
    /// `defs[pc]` = for each source register of `pc`, the defining pc.
    defs: Vec<Vec<(Reg, Option<usize>)>>,
    /// `loaded[pc]` = pcs of loads whose values (transitively) feed `pc`.
    loaded: Vec<Vec<usize>>,
}

impl ValueFlow {
    /// Computes dataflow for `program`.
    #[must_use]
    pub fn compute(program: &Program) -> Self {
        let n = program.len();
        let mut last_def: HashMap<Reg, usize> = HashMap::new();
        // taint[r] = set of load pcs whose result feeds r.
        let mut taint: HashMap<Reg, Vec<usize>> = HashMap::new();
        let mut defs = Vec::with_capacity(n);
        let mut loaded = Vec::with_capacity(n);

        for (pc, inst) in program.iter() {
            let srcs: Vec<(Reg, Option<usize>)> = inst
                .sources()
                .into_iter()
                .map(|r| (r, last_def.get(&r).copied()))
                .collect();
            // The load-derived values feeding this instruction.
            let mut feed: Vec<usize> = srcs
                .iter()
                .flat_map(|(r, _)| taint.get(r).cloned().unwrap_or_default())
                .collect();
            feed.sort_unstable();
            feed.dedup();
            defs.push(srcs);
            loaded.push(feed.clone());

            if let Some(dst) = inst.destination() {
                if !dst.is_zero() {
                    last_def.insert(dst, pc);
                    let mut t = feed;
                    if matches!(
                        inst,
                        Instruction::Load { .. }
                            | Instruction::ReadMsr { .. }
                            | Instruction::FpMove { .. }
                    ) {
                        t.push(pc);
                    }
                    taint.insert(dst, t);
                }
            }
        }
        ValueFlow { defs, loaded }
    }

    /// The defining pc of each source register of `pc`.
    #[must_use]
    pub fn sources_of(&self, pc: usize) -> &[(Reg, Option<usize>)] {
        &self.defs[pc]
    }

    /// The load/MSR/FP-read pcs whose values transitively feed `pc`'s
    /// operands.
    #[must_use]
    pub fn load_roots(&self, pc: usize) -> &[usize] {
        &self.loaded[pc]
    }

    /// Whether `pc`'s *address* operands derive from the value loaded at
    /// `load_pc` — the access→send pattern.
    #[must_use]
    pub fn address_depends_on_load(&self, pc: usize, load_pc: usize) -> bool {
        self.loaded[pc].contains(&load_pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::asm;

    #[test]
    fn def_use_chains() {
        let p = asm::assemble("imm r0, 1\nadd r1, r0, 2\nadd r2, r1, r0\nhalt").unwrap();
        let vf = ValueFlow::compute(&p);
        assert_eq!(vf.sources_of(1), &[(isa::Reg::R0, Some(0))]);
        let s2 = vf.sources_of(2);
        assert_eq!(s2[0], (isa::Reg::R1, Some(1)));
        assert_eq!(s2[1], (isa::Reg::R0, Some(0)));
    }

    #[test]
    fn load_taint_propagates_through_arithmetic() {
        let p = asm::assemble("load r6, [r5]\nshl r7, r6, 12\nadd r7, r7, r3\nload r8, [r7]\nhalt")
            .unwrap();
        let vf = ValueFlow::compute(&p);
        assert!(vf.load_roots(0).is_empty());
        assert_eq!(vf.load_roots(1), &[0]);
        assert_eq!(vf.load_roots(2), &[0]);
        assert!(vf.address_depends_on_load(3, 0), "send depends on the load");
    }

    #[test]
    fn taint_killed_by_overwrite() {
        let p = asm::assemble("load r6, [r5]\nimm r6, 0\nload r8, [r6]\nhalt").unwrap();
        let vf = ValueFlow::compute(&p);
        assert!(!vf.address_depends_on_load(2, 0));
    }

    #[test]
    fn msr_and_fp_reads_taint_like_loads() {
        let p = asm::assemble("rdmsr r6, 0x10\nload r8, [r6]\nfpmov r1, f0\nload r9, [r1]\nhalt")
            .unwrap();
        let vf = ValueFlow::compute(&p);
        assert!(vf.address_depends_on_load(1, 0));
        assert!(vf.address_depends_on_load(3, 2));
    }
}
