//! Register def-use dataflow over straight-line program order.
//!
//! The tool needs two facts per instruction: which earlier instruction
//! produced each source register (def-use edges = the attack graph's data
//! dependencies), and whether a value *derived from a load* flows into a
//! later memory address (the access→use→send chain).

use isa::{Instruction, Program, Reg};
use std::collections::HashMap;
use tsg::{EdgeKind, NodeId, NodeKind, Tsg};

/// Def-use and taint information for one program.
///
/// The analysis is a single forward pass in program order. Branches are
/// treated as non-killing (both paths continue with the same definitions):
/// this over-approximates flows, which is the safe direction for a
/// vulnerability finder.
///
/// Taint is answered *graph-side*: the def-use chains form a DAG (one node
/// per pc, one edge per resolved def→use), and "which pcs does load L
/// feed?" is exactly L's descendant set in that DAG. Each load root is
/// enumerated with one pass of
/// [`ReachabilityIndex::descendants`](tsg::ReachabilityIndex::descendants)
/// rather than a `has_path(load, pc)` probe per candidate pc — the same
/// cached reachability engine that serves the attack-graph queries
/// downstream. Programs here are gadget-sized, so the closure build cost
/// is trivial.
#[derive(Debug, Clone)]
pub struct ValueFlow {
    /// `defs[pc]` = for each source register of `pc`, the defining pc.
    defs: Vec<Vec<(Reg, Option<usize>)>>,
    /// `loaded[pc]` = pcs of loads whose values (transitively) feed `pc`.
    loaded: Vec<Vec<usize>>,
}

impl ValueFlow {
    /// Computes dataflow for `program`.
    #[must_use]
    pub fn compute(program: &Program) -> Self {
        let n = program.len();
        let mut last_def: HashMap<Reg, usize> = HashMap::new();
        let mut defs = Vec::with_capacity(n);
        // The def-use DAG: node k = pc k (program order guarantees every
        // edge points forward, so insertion can never cycle).
        let mut dug = Tsg::new();
        let ids: Vec<NodeId> = (0..n)
            .map(|pc| dug.add_node(format!("pc{pc}"), NodeKind::Compute))
            .collect();
        let mut roots: Vec<usize> = Vec::new();

        for (pc, inst) in program.iter() {
            let srcs: Vec<(Reg, Option<usize>)> = inst
                .sources()
                .into_iter()
                .map(|r| (r, last_def.get(&r).copied()))
                .collect();
            for &(_, def) in &srcs {
                if let Some(def_pc) = def {
                    dug.add_edge(ids[def_pc], ids[pc], EdgeKind::Data)
                        .expect("forward def-use edge cannot cycle");
                }
            }
            defs.push(srcs);

            if let Some(dst) = inst.destination() {
                if !dst.is_zero() {
                    last_def.insert(dst, pc);
                    if matches!(
                        inst,
                        Instruction::Load { .. }
                            | Instruction::ReadMsr { .. }
                            | Instruction::FpMove { .. }
                    ) {
                        roots.push(pc);
                    }
                }
            }
        }

        // One descendants enumeration per load root marks every pc its
        // value (transitively) feeds. Kills are already encoded: an
        // overwritten register simply has no def-use edge onward.
        let mut loaded: Vec<Vec<usize>> = vec![Vec::new(); n];
        if !roots.is_empty() {
            let idx = dug.reachability();
            for &root in &roots {
                for v in idx.descendants(ids[root]) {
                    loaded[v.index()].push(root);
                }
            }
            for l in &mut loaded {
                l.sort_unstable();
            }
        }
        ValueFlow { defs, loaded }
    }

    /// The defining pc of each source register of `pc`.
    #[must_use]
    pub fn sources_of(&self, pc: usize) -> &[(Reg, Option<usize>)] {
        &self.defs[pc]
    }

    /// The load/MSR/FP-read pcs whose values transitively feed `pc`'s
    /// operands.
    #[must_use]
    pub fn load_roots(&self, pc: usize) -> &[usize] {
        &self.loaded[pc]
    }

    /// Whether `pc`'s *address* operands derive from the value loaded at
    /// `load_pc` — the access→send pattern.
    #[must_use]
    pub fn address_depends_on_load(&self, pc: usize, load_pc: usize) -> bool {
        self.loaded[pc].contains(&load_pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::asm;

    #[test]
    fn def_use_chains() {
        let p = asm::assemble("imm r0, 1\nadd r1, r0, 2\nadd r2, r1, r0\nhalt").unwrap();
        let vf = ValueFlow::compute(&p);
        assert_eq!(vf.sources_of(1), &[(isa::Reg::R0, Some(0))]);
        let s2 = vf.sources_of(2);
        assert_eq!(s2[0], (isa::Reg::R1, Some(1)));
        assert_eq!(s2[1], (isa::Reg::R0, Some(0)));
    }

    #[test]
    fn load_taint_propagates_through_arithmetic() {
        let p = asm::assemble("load r6, [r5]\nshl r7, r6, 12\nadd r7, r7, r3\nload r8, [r7]\nhalt")
            .unwrap();
        let vf = ValueFlow::compute(&p);
        assert!(vf.load_roots(0).is_empty());
        assert_eq!(vf.load_roots(1), &[0]);
        assert_eq!(vf.load_roots(2), &[0]);
        assert!(vf.address_depends_on_load(3, 0), "send depends on the load");
    }

    #[test]
    fn taint_killed_by_overwrite() {
        let p = asm::assemble("load r6, [r5]\nimm r6, 0\nload r8, [r6]\nhalt").unwrap();
        let vf = ValueFlow::compute(&p);
        assert!(!vf.address_depends_on_load(2, 0));
    }

    #[test]
    fn msr_and_fp_reads_taint_like_loads() {
        let p = asm::assemble("rdmsr r6, 0x10\nload r8, [r6]\nfpmov r1, f0\nload r9, [r1]\nhalt")
            .unwrap();
        let vf = ValueFlow::compute(&p);
        assert!(vf.address_depends_on_load(1, 0));
        assert!(vf.address_depends_on_load(3, 2));
    }
}
