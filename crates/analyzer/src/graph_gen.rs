//! Attack-graph construction from programs (the middle boxes of Figure 9).
//!
//! Spectre-type gadgets are modeled at the **instruction level** (nodes are
//! instructions, edges are data dependencies and fences); Meltdown-type
//! gadget accesses are **decomposed into micro-ops** — a permission-check
//! node and a data-read node that race with each other — exactly the
//! "Faulty access?" branch of Figure 9.

use crate::dataflow::ValueFlow;
use crate::gadget::{Gadget, GadgetClass};
use crate::{AnalysisConfig, AnalyzerError};
use isa::{FenceKind, Instruction, Program};
use std::collections::HashMap;
use tsg::{EdgeKind, NodeId, NodeKind, SecretSource, SecurityAnalysis};

fn source_of(inst: &Instruction) -> SecretSource {
    match inst {
        Instruction::ReadMsr { .. } => SecretSource::SpecialRegister,
        Instruction::FpMove { .. } => SecretSource::Fpu,
        _ => SecretSource::ArchitecturalMemory,
    }
}

/// Builds the attack graph for `program` given the detected gadgets, and
/// declares the authorization→{access,use,send} requirements.
///
/// # Errors
///
/// [`AnalyzerError::Graph`] if edge insertion fails (cannot happen for the
/// acyclic structures produced here; kept for robustness).
pub fn build_graph(
    program: &Program,
    gadgets: &[Gadget],
    _config: &AnalysisConfig,
) -> Result<SecurityAnalysis, AnalyzerError> {
    let vf = ValueFlow::compute(program);
    let mut sa = SecurityAnalysis::new();

    // Role assignment per pc, derived from the gadgets.
    let mut access_pcs: HashMap<usize, SecretSource> = HashMap::new();
    let mut use_pcs: Vec<usize> = Vec::new();
    let mut send_pcs: Vec<usize> = Vec::new();
    let mut meltdown_pcs: Vec<usize> = Vec::new();
    for g in gadgets {
        access_pcs.insert(g.access_pc, source_of(&program[g.access_pc]));
        use_pcs.extend(&g.use_pcs);
        send_pcs.push(g.send_pc);
        if g.class == GadgetClass::MeltdownType {
            meltdown_pcs.push(g.access_pc);
        }
    }

    // Node creation. A Meltdown-type access becomes two micro-op nodes:
    // in-node = the permission check (authorization), out-node = the read.
    let mut in_node: Vec<NodeId> = Vec::with_capacity(program.len());
    let mut out_node: Vec<NodeId> = Vec::with_capacity(program.len());
    for (pc, inst) in program.iter() {
        if meltdown_pcs.contains(&pc) {
            let check = sa.graph_mut().add_node(
                format!("{pc}: permission check of '{inst}'"),
                NodeKind::Authorization,
            );
            let read = sa.graph_mut().add_node(
                format!("{pc}: data read of '{inst}'"),
                NodeKind::SecretAccess(access_pcs[&pc]),
            );
            in_node.push(check);
            out_node.push(read);
        } else {
            let kind = if matches!(
                inst,
                Instruction::BranchIf { .. } | Instruction::JumpIndirect { .. } | Instruction::Ret
            ) {
                NodeKind::Authorization
            } else if let Some(&src) = access_pcs.get(&pc) {
                NodeKind::SecretAccess(src)
            } else if send_pcs.contains(&pc) {
                NodeKind::Send
            } else if use_pcs.contains(&pc) {
                NodeKind::UseSecret
            } else {
                NodeKind::Compute
            };
            let id = sa.graph_mut().add_node(format!("{pc}: {inst}"), kind);
            in_node.push(id);
            out_node.push(id);
        }
    }

    // Data-dependency edges from the def-use chains. A Meltdown-type
    // access's inputs feed both micro-ops; its output leaves the read node.
    for (pc, _) in program.iter() {
        for &(_, def) in vf.sources_of(pc) {
            if let Some(def_pc) = def {
                sa.graph_mut()
                    .add_edge(out_node[def_pc], in_node[pc], EdgeKind::Data)?;
                if in_node[pc] != out_node[pc] {
                    sa.graph_mut()
                        .add_edge(out_node[def_pc], out_node[pc], EdgeKind::Data)?;
                }
            }
        }
    }

    // Fence edges: an LFENCE orders everything across it; an MFENCE orders
    // memory operations across it.
    for (pc, inst) in program.iter() {
        let Instruction::Fence(kind) = inst else {
            continue;
        };
        for (other, oi) in program.iter() {
            let applies = match kind {
                FenceKind::LFence => !matches!(oi, Instruction::Fence(_)) || other != pc,
                FenceKind::MFence | FenceKind::Ssbb => oi.is_memory(),
            };
            if !applies || other == pc {
                continue;
            }
            if other < pc {
                sa.graph_mut()
                    .add_edge(out_node[other], in_node[pc], EdgeKind::Fence)?;
            } else {
                sa.graph_mut()
                    .add_edge(out_node[pc], in_node[other], EdgeKind::Fence)?;
            }
        }
    }

    // Requirements: each gadget's authorization must precede its access,
    // uses and send.
    for g in gadgets {
        let auth = match g.class {
            GadgetClass::SpectreType => out_node[g.auth_pc],
            GadgetClass::MeltdownType => in_node[g.access_pc],
        };
        sa.require(auth, out_node[g.access_pc])?;
        for &u in &g.use_pcs {
            sa.require(auth, out_node[u])?;
        }
        sa.require(auth, out_node[g.send_pc])?;
    }
    Ok(sa)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::find_gadgets;
    use isa::asm;

    fn analyze(src: &str, cfg: &AnalysisConfig) -> SecurityAnalysis {
        let p = asm::assemble(src).unwrap();
        let g = find_gadgets(&p, cfg);
        build_graph(&p, &g, cfg).unwrap()
    }

    #[test]
    fn spectre_graph_has_instruction_level_race() {
        let sa = analyze(
            "load r4, [r2]\nbge r0, r4, out\nload r6, [r5]\nadd r7, r6, r3\nload r8, [r7]\nout: halt",
            &AnalysisConfig::default(),
        );
        let v = sa.vulnerabilities().unwrap();
        // Access, use and send all race with the branch.
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn meltdown_graph_decomposes_the_access() {
        let sa = analyze(
            "load r6, [r5]\nload r8, [r6]\nhalt",
            &AnalysisConfig {
                user_mode: true,
                ..AnalysisConfig::default()
            },
        );
        // The faulting load became two nodes: check + read.
        let labels: Vec<String> = sa.graph().nodes().map(|n| n.label().to_owned()).collect();
        assert!(labels.iter().any(|l| l.contains("permission check")));
        assert!(labels.iter().any(|l| l.contains("data read")));
        // The check and the read race — the intra-instruction hole.
        let check = sa
            .graph()
            .nodes()
            .find(|n| n.label().contains("permission check"))
            .unwrap()
            .id();
        let read = sa
            .graph()
            .nodes()
            .find(|n| n.label().contains("data read"))
            .unwrap()
            .id();
        assert!(sa.graph().has_race(check, read).unwrap());
    }

    #[test]
    fn fence_edges_remove_the_race() {
        let sa = analyze(
            "load r4, [r2]\nbge r0, r4, out\nlfence\nload r6, [r5]\nadd r7, r6, r3\nload r8, [r7]\nout: halt",
            &AnalysisConfig::default(),
        );
        assert!(sa.is_secure().unwrap());
    }

    #[test]
    fn graph_exports_dot() {
        let sa = analyze(
            "load r4, [r2]\nbge r0, r4, out\nload r6, [r5]\nload r8, [r6]\nout: halt",
            &AnalysisConfig::default(),
        );
        let dot = sa.graph().to_dot("generated");
        assert!(dot.contains("digraph"));
        assert!(dot.contains("bge"));
    }
}
