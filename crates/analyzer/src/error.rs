//! Analyzer error type.

use std::error::Error;
use std::fmt;

/// Errors from the analyzer pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum AnalyzerError {
    /// Attack-graph construction failed.
    Graph(tsg::TsgError),
    /// Program reconstruction (patching) failed.
    Program(isa::IsaError),
}

impl fmt::Display for AnalyzerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzerError::Graph(e) => write!(f, "graph construction failed: {e}"),
            AnalyzerError::Program(e) => write!(f, "program patching failed: {e}"),
        }
    }
}

impl Error for AnalyzerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalyzerError::Graph(e) => Some(e),
            AnalyzerError::Program(e) => Some(e),
        }
    }
}

impl From<tsg::TsgError> for AnalyzerError {
    fn from(e: tsg::TsgError) -> Self {
        AnalyzerError::Graph(e)
    }
}

impl From<isa::IsaError> for AnalyzerError {
    fn from(e: isa::IsaError) -> Self {
        AnalyzerError::Program(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AnalyzerError::from(tsg::TsgError::UnknownNode(tsg::NodeId::from_index(0)));
        assert!(e.to_string().contains("graph"));
        assert!(e.source().is_some());
        let e = AnalyzerError::from(isa::IsaError::UndefinedLabel("x".into()));
        assert!(e.to_string().contains("patching"));
    }
}
