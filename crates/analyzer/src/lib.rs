//! # `analyzer` — the attack-graph construction tool of Figure 9
//!
//! Section V-C of "New Models for Understanding and Reasoning about
//! Speculative Execution Attacks" (HPCA 2021) sketches a tool that
//!
//! 1. finds the **authorization** instructions (branches, indirect jumps,
//!    returns — and, for faulty accesses, the intra-instruction permission
//!    check),
//! 2. finds potential **secret accesses** (loads/MSR/FP reads executable
//!    under an unresolved authorization),
//! 3. finds potential **covert sends** (memory operations whose address
//!    depends on a previously loaded value),
//! 4. builds the attack graph at the right level — instruction level for
//!    Spectre-type, micro-op level for Meltdown-type (the "Faulty access?"
//!    branch of Figure 9),
//! 5. reports missing security dependencies (Theorem 1 races), and
//! 6. **patches** them by inserting fences (or address masking).
//!
//! This crate implements that tool for [`isa`] programs.
//!
//! ```
//! use analyzer::{Analyzer, AnalysisConfig};
//! use isa::asm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = asm::assemble(r"
//!     load r4, [r2]          ; fetch bound (authorization data)
//!     bge  r0, r4, out       ; bounds check
//!     load r6, [r5]          ; potential secret access
//!     add  r7, r6, r3        ; use
//!     load r8, [r7]          ; potential covert send
//! out:
//!     halt
//! ")?;
//! let report = Analyzer::new(AnalysisConfig::default()).analyze(&program)?;
//! assert_eq!(report.gadgets.len(), 1);
//! assert!(!report.vulnerabilities.is_empty());
//!
//! // Patch: insert an LFENCE after the authorization.
//! let patched = report.patch_with_fences(&program)?;
//! let report2 = Analyzer::new(AnalysisConfig::default()).analyze(&patched)?;
//! assert!(report2.vulnerabilities.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dataflow;
mod error;
mod gadget;
mod graph_gen;
mod patch;

pub use dataflow::ValueFlow;
pub use error::AnalyzerError;
pub use gadget::{Gadget, GadgetClass};
pub use graph_gen::build_graph;
pub use patch::{insert_at, mask_index, sabc_serialize};

use isa::Program;
use tsg::SecurityAnalysis;

/// Tool configuration.
#[derive(Debug, Clone, Default)]
pub struct AnalysisConfig {
    /// The program runs unprivileged, so memory/MSR/FP accesses may fault:
    /// such instructions carry an *intra-instruction* authorization and are
    /// decomposed at the micro-op level (Meltdown-type).
    pub user_mode: bool,
    /// Instruction indices the user marked as touching protected data
    /// (§V-C: "the most secure way is for the user to initially specify
    /// what data and code should be protected"). These are always treated
    /// as secret accesses even without a preceding authorization.
    pub protected_accesses: Vec<usize>,
}

/// The analysis result: detected gadgets, the constructed attack graph, and
/// the missing security dependencies.
#[derive(Debug)]
pub struct AnalysisReport {
    /// Detected speculation gadgets (authorization/access/send chains).
    pub gadgets: Vec<Gadget>,
    /// The constructed attack graph with declared requirements.
    pub graph: SecurityAnalysis,
    /// The missing security dependencies found by Theorem 1.
    pub vulnerabilities: Vec<tsg::Vulnerability>,
}

impl AnalysisReport {
    /// Patches the program by inserting an `LFENCE` immediately after each
    /// gadget's authorization instruction, serializing authorization and
    /// access (defense strategy ①).
    ///
    /// # Errors
    ///
    /// [`AnalyzerError`] if program reconstruction fails.
    pub fn patch_with_fences(&self, program: &Program) -> Result<Program, AnalyzerError> {
        patch::patch_with_fences(program, &self.gadgets)
    }
}

/// The Figure-9 tool.
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    config: AnalysisConfig,
}

impl Analyzer {
    /// Creates an analyzer with the given configuration.
    #[must_use]
    pub fn new(config: AnalysisConfig) -> Self {
        Analyzer { config }
    }

    /// Runs the full Figure-9 flow on `program`.
    ///
    /// # Errors
    ///
    /// [`AnalyzerError`] if graph construction fails (cannot happen for
    /// valid programs; kept for robustness).
    pub fn analyze(&self, program: &Program) -> Result<AnalysisReport, AnalyzerError> {
        let gadgets = gadget::find_gadgets(program, &self.config);
        let graph = graph_gen::build_graph(program, &gadgets, &self.config)?;
        let vulnerabilities = graph.vulnerabilities()?;
        Ok(AnalysisReport {
            gadgets,
            graph,
            vulnerabilities,
        })
    }
}

/// Lifts `program` to its attack graph: gadget detection plus graph
/// construction, *without* computing the vulnerability report.
///
/// This is the entry point for callers that run their own verdict over
/// the graph — e.g. the fuzzing pipeline, which fingerprints the lifted
/// shape and asks `defenses::PatchSession` for the Theorem-1 race
/// verdict on thousands of generated candidates.
///
/// # Errors
///
/// [`AnalyzerError`] if graph construction fails (cannot happen for
/// valid programs; kept for robustness).
pub fn lift(program: &Program, config: &AnalysisConfig) -> Result<SecurityAnalysis, AnalyzerError> {
    let gadgets = gadget::find_gadgets(program, config);
    graph_gen::build_graph(program, &gadgets, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isa::asm;

    #[test]
    fn clean_program_has_no_gadgets() {
        let p = asm::assemble("imm r0, 1\nadd r1, r0, 2\nhalt").unwrap();
        let r = Analyzer::default().analyze(&p).unwrap();
        assert!(r.gadgets.is_empty());
        assert!(r.vulnerabilities.is_empty());
    }

    #[test]
    fn fenced_gadget_is_not_vulnerable() {
        let p = asm::assemble(
            r"
            load r4, [r2]
            bge  r0, r4, out
            lfence
            load r6, [r5]
            add  r7, r6, r3
            load r8, [r7]
        out:
            halt",
        )
        .unwrap();
        let r = Analyzer::default().analyze(&p).unwrap();
        // The gadget shape is still recognized…
        assert_eq!(r.gadgets.len(), 1);
        // …but the fence supplies the ordering: no missing dependency.
        assert!(r.vulnerabilities.is_empty(), "{:?}", r.vulnerabilities);
    }

    #[test]
    fn analyzer_is_default_constructible() {
        let a = Analyzer::default();
        let p = asm::assemble("halt").unwrap();
        assert!(a.analyze(&p).unwrap().gadgets.is_empty());
    }
}
