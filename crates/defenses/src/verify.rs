//! Executable verification: does defense D stop attack A on the simulator?
//!
//! This is the crate's answer to the paper's question ③ ("are the recently
//! proposed defenses effective?"): instead of asserting effectiveness, we
//! *run* every attack under every modeled defense and report the verdict.

use crate::Defense;
use attacks::{Attack, AttackError, BatchRunner};
use std::fmt;
use uarch::UarchConfig;

/// Outcome of running one attack under one defense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The attack failed to recover the secret.
    Blocked,
    /// The attack still recovered the secret — the defense does not insert
    /// the security dependency this attack's race needs (the paper's
    /// "false sense of security" case).
    Leaked,
    /// The defense is software-only (no hardware model); its effect is
    /// shown at the graph/program level instead.
    GraphOnly,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Blocked => "blocked",
            Verdict::Leaked => "LEAKED",
            Verdict::GraphOnly => "(graph-only)",
        })
    }
}

/// Runs `attack` on a machine configured with `defense` applied over
/// `base`, and reports the verdict.
///
/// # Errors
///
/// Propagates [`AttackError`] if the simulation itself fails.
pub fn verify(
    defense: &Defense,
    attack: &dyn Attack,
    base: &UarchConfig,
) -> Result<Verdict, AttackError> {
    let Some(cfg) = defense.configure(base) else {
        return Ok(Verdict::GraphOnly);
    };
    let out = attack.run(&cfg)?;
    Ok(if out.leaked {
        Verdict::Leaked
    } else {
        Verdict::Blocked
    })
}

/// Runs `attack` on a machine with the whole `stack` deployed over
/// `base`, and reports the verdict — the stack-level analogue of
/// [`verify`]. For a singleton stack this is byte-for-byte the single
/// defense verdict.
///
/// # Errors
///
/// Propagates [`AttackError`] if the simulation itself fails.
pub fn verify_stack(
    stack: &crate::DefenseStack,
    attack: &dyn Attack,
    base: &UarchConfig,
) -> Result<Verdict, AttackError> {
    let Some(cfg) = stack.apply(base) else {
        return Ok(Verdict::GraphOnly);
    };
    let out = attack.run(&cfg)?;
    Ok(if out.leaked {
        Verdict::Leaked
    } else {
        Verdict::Blocked
    })
}

/// [`verify_stack`] on a warm machine: identical verdicts, but the
/// simulation reuses `runner`'s pooled machine instead of building one per
/// call. This is the campaign executor's hot path — one runner per worker
/// thread amortizes machine construction across thousands of cells.
///
/// # Errors
///
/// Propagates [`AttackError`] if the simulation itself fails.
pub fn verify_stack_warm(
    stack: &crate::DefenseStack,
    attack: &dyn Attack,
    base: &UarchConfig,
    runner: &mut BatchRunner,
) -> Result<Verdict, AttackError> {
    let Some(cfg) = stack.apply(base) else {
        return Ok(Verdict::GraphOnly);
    };
    let out = runner.run(attack, &cfg)?;
    Ok(if out.leaked {
        Verdict::Leaked
    } else {
        Verdict::Blocked
    })
}

/// One row of the defense-effectiveness matrix.
#[derive(Debug, Clone)]
pub struct MatrixRow {
    /// The attack name.
    pub attack: &'static str,
    /// Per-defense verdicts, in catalog order.
    pub verdicts: Vec<Verdict>,
}

/// Runs every attack under every defense; rows are attacks, columns are
/// defenses (in the given orders).
///
/// # Errors
///
/// Propagates [`AttackError`] from any simulation.
pub fn verify_matrix(
    defenses: &[Defense],
    attacks_list: &[Box<dyn Attack>],
    base: &UarchConfig,
) -> Result<Vec<MatrixRow>, AttackError> {
    let mut rows = Vec::with_capacity(attacks_list.len());
    for a in attacks_list {
        let mut verdicts = Vec::with_capacity(defenses.len());
        for d in defenses {
            verdicts.push(verify(d, a.as_ref(), base)?);
        }
        rows.push(MatrixRow {
            attack: a.info().name,
            verdicts,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn defense(name: &str) -> Defense {
        catalog()
            .into_iter()
            .find(|d| d.name == name)
            .unwrap_or_else(|| panic!("defense {name} missing"))
    }

    #[test]
    fn kpti_blocks_meltdown_but_not_spectre_v1() {
        let base = UarchConfig::default();
        let kpti = defense("KAISER/KPTI");
        assert_eq!(
            verify(&kpti, &attacks::meltdown::Meltdown, &base).unwrap(),
            Verdict::Blocked
        );
        // The paper's point: the defense must match the missing dependency.
        assert_eq!(
            verify(&kpti, &attacks::spectre_v1::SpectreV1, &base).unwrap(),
            Verdict::Leaked
        );
    }

    #[test]
    fn lfence_blocks_spectre_v1() {
        assert_eq!(
            verify(
                &defense("LFENCE"),
                &attacks::spectre_v1::SpectreV1,
                &UarchConfig::default()
            )
            .unwrap(),
            Verdict::Blocked
        );
    }

    #[test]
    fn ibpb_blocks_v2_and_rsb_but_not_meltdown() {
        let base = UarchConfig::default();
        let ibpb = defense("IBPB");
        assert_eq!(
            verify(&ibpb, &attacks::spectre_v2::SpectreV2, &base).unwrap(),
            Verdict::Blocked
        );
        assert_eq!(
            verify(&ibpb, &attacks::spectre_rsb::SpectreRsb, &base).unwrap(),
            Verdict::Blocked
        );
        assert_eq!(
            verify(&ibpb, &attacks::meltdown::Meltdown, &base).unwrap(),
            Verdict::Leaked
        );
    }

    #[test]
    fn nda_blocks_every_cataloged_attack() {
        // Strategy ② at the data-use chokepoint blocks all variants: every
        // attack must *use* the secret to send it.
        let base = UarchConfig::default();
        let nda = defense("NDA");
        for a in attacks::catalog() {
            assert_eq!(
                verify(&nda, a.as_ref(), &base).unwrap(),
                Verdict::Blocked,
                "NDA must block {}",
                a.info().name
            );
        }
    }

    #[test]
    fn dawg_blocks_cross_domain_attacks_only() {
        let base = UarchConfig::default();
        let dawg = defense("DAWG");
        // Cross-context: the receiver cannot observe the victim-domain fill.
        assert_eq!(
            verify(&dawg, &attacks::spectre_v2::SpectreV2, &base).unwrap(),
            Verdict::Blocked
        );
        // Same-context Spectre v1 is *not* affected by cache partitioning —
        // sender and receiver share the domain (paper: DAWG protects
        // cross-domain cache timing only).
        assert_eq!(
            verify(&dawg, &attacks::spectre_v1::SpectreV1, &base).unwrap(),
            Verdict::Leaked
        );
    }

    #[test]
    fn software_defense_reports_graph_only() {
        assert_eq!(
            verify(
                &defense("Address masking (coarse)"),
                &attacks::spectre_v1::SpectreV1,
                &UarchConfig::default()
            )
            .unwrap(),
            Verdict::GraphOnly
        );
    }

    #[test]
    fn matrix_has_expected_shape() {
        // A small matrix (2 defenses × 3 attacks) to keep test time down.
        let defenses = vec![
            defense("KAISER/KPTI"),
            defense("In-silicon fix (Cascade Lake)"),
        ];
        let atks: Vec<Box<dyn Attack>> = vec![
            Box::new(attacks::meltdown::Meltdown),
            Box::new(attacks::foreshadow::Foreshadow::sgx()),
            Box::new(attacks::mds::Fallout),
        ];
        let m = verify_matrix(&defenses, &atks, &UarchConfig::default()).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m[0].verdicts.len(), 2);
        // The silicon fix blocks all three Meltdown-family attacks.
        for row in &m {
            assert_eq!(row.verdicts[1], Verdict::Blocked, "{}", row.attack);
        }
    }

    #[test]
    fn stack_verify_matches_singleton_and_evaluates_bundles() {
        let base = UarchConfig::default();
        // Singleton stack ≡ single defense, verdict for verdict.
        let kpti_stack = crate::DefenseStack::single(defense("KAISER/KPTI"));
        for attack in [
            &attacks::meltdown::Meltdown as &dyn Attack,
            &attacks::spectre_v1::SpectreV1,
        ] {
            assert_eq!(
                verify_stack(&kpti_stack, attack, &base).unwrap(),
                verify(&defense("KAISER/KPTI"), attack, &base).unwrap()
            );
        }
        // The Linux bundle blocks what its members block…
        let linux = crate::presets::linux_default();
        assert_eq!(
            verify_stack(&linux, &attacks::meltdown::Meltdown, &base).unwrap(),
            Verdict::Blocked
        );
        assert_eq!(
            verify_stack(&linux, &attacks::spectre_v2::SpectreV2, &base).unwrap(),
            Verdict::Blocked
        );
        // …but same-context bounds bypass still leaks through the bundle
        // (address masking is software): the §V-B point, now stack-shaped.
        assert_eq!(
            verify_stack(&linux, &attacks::spectre_v1::SpectreV1, &base).unwrap(),
            Verdict::Leaked
        );
        // All-software stacks are graph-only, like software-only defenses.
        let software = crate::DefenseStack::parse("mask-coarse").unwrap();
        assert_eq!(
            verify_stack(&software, &attacks::spectre_v1::SpectreV1, &base).unwrap(),
            Verdict::GraphOnly
        );
    }

    #[test]
    fn warm_verify_matches_cold_across_stacks_and_attacks() {
        // One shared runner across heterogeneous (stack, attack) pairs —
        // the campaign worker shape — must reproduce the cold verdicts,
        // including the GraphOnly short-circuit (which must not dirty or
        // depend on the pooled machine).
        let base = UarchConfig::default();
        let stacks = [
            crate::DefenseStack::single(defense("KAISER/KPTI")),
            crate::presets::linux_default(),
            crate::DefenseStack::parse("mask-coarse").unwrap(),
            crate::DefenseStack::single(defense("NDA")),
        ];
        let atks: [&dyn Attack; 3] = [
            &attacks::meltdown::Meltdown,
            &attacks::spectre_v1::SpectreV1,
            &attacks::zenbleed::ZenBleed,
        ];
        let mut runner = BatchRunner::new();
        for stack in &stacks {
            for attack in atks {
                assert_eq!(
                    verify_stack_warm(stack, attack, &base, &mut runner).unwrap(),
                    verify_stack(stack, attack, &base).unwrap(),
                    "warm verdict diverged for {}",
                    attack.info().name
                );
            }
        }
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Blocked.to_string(), "blocked");
        assert_eq!(Verdict::Leaked.to_string(), "LEAKED");
        assert!(Verdict::GraphOnly.to_string().contains("graph"));
    }
}
