//! Recorded configuration overlays: the machine-level effect of a defense
//! as *data* instead of an opaque `fn(&mut UarchConfig)`.
//!
//! Every modeled defense carries an [`Overlay`] — an ordered list of
//! [`KnobWrite`]s, each naming the [`uarch`] knob it sets and the value it
//! writes. Because the writes are recorded rather than executed behind a
//! function pointer, overlays are
//!
//! * **inspectable**: `defense.overlay()` lists exactly what the defense
//!   changes on the machine;
//! * **diffable**: [`Overlay::diff`] reports which writes would actually
//!   change a given base configuration;
//! * **fingerprintable**: [`Overlay::fingerprint`] is a stable digest of
//!   the writes, independent of how the catalog spells them;
//! * **composable with conflict detection**: folding two overlays that
//!   write the same knob *differently* is a typed
//!   [`StackError::ConflictingKnob`](crate::StackError::ConflictingKnob)
//!   instead of a silent last-writer-wins.

use std::fmt;
use uarch::UarchConfig;

/// A boolean [`UarchConfig`] knob a defense overlay may write.
///
/// The variants cover every field the Table-II/§V-B catalog touches: the
/// Figure-8 defense knobs plus the vulnerability knobs the in-silicon fix
/// and eager-FPU switching turn *off*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OverlayKnob {
    /// Strategy ①: loads wait for all older control flow
    /// (`no_speculative_loads`).
    NoSpeculativeLoads,
    /// Strategy ① intra-instruction: permission checks complete before
    /// forwarding (`eager_permission_check`).
    EagerPermissionCheck,
    /// Strategy ②: no speculative forwarding (`nda`).
    Nda,
    /// Strategy ② relaxed: speculative taint tracking (`stt`).
    Stt,
    /// Strategy ③: delay speculative misses (`delay_on_miss`).
    DelayOnMiss,
    /// Strategy ③: shadow-structure fills (`invisible_spec`).
    InvisibleSpec,
    /// Strategy ③: undo cache changes on squash (`cleanup_spec`).
    CleanupSpec,
    /// Strategy ③ cross-domain: cache way partitioning (`dawg`).
    Dawg,
    /// Strategy ④: flush predictor state on context switches
    /// (`flush_predictors_on_switch`).
    FlushPredictorsOnSwitch,
    /// No BTB prediction for indirect branches (`no_indirect_prediction`,
    /// the retpoline effect).
    NoIndirectPrediction,
    /// Refill the RSB on context switches (`rsb_stuffing`).
    RsbStuffing,
    /// Unmap kernel pages in user mode (`kpti`).
    Kpti,
    /// Loads never bypass unresolved stores (`ssb_disable`).
    SsbDisable,
    /// Lazy FPU state switching (`lazy_fpu`; eager switching writes
    /// `false`).
    LazyFpu,
    /// Faulting loads transiently forward data (`transient_forwarding`;
    /// the in-silicon fix writes `false`).
    TransientForwarding,
    /// Stale-buffer forwarding on faults (`mds_forwarding`).
    MdsForwarding,
    /// L1 probing on terminal page-table faults (`l1tf_forwarding`).
    L1tfForwarding,
}

impl OverlayKnob {
    /// Writes `value` to this knob's field of `cfg`.
    pub fn write(self, cfg: &mut UarchConfig, value: bool) {
        *self.field_mut(cfg) = value;
    }

    /// Reads this knob's current value from `cfg`.
    #[must_use]
    pub fn read(self, cfg: &UarchConfig) -> bool {
        match self {
            OverlayKnob::NoSpeculativeLoads => cfg.no_speculative_loads,
            OverlayKnob::EagerPermissionCheck => cfg.eager_permission_check,
            OverlayKnob::Nda => cfg.nda,
            OverlayKnob::Stt => cfg.stt,
            OverlayKnob::DelayOnMiss => cfg.delay_on_miss,
            OverlayKnob::InvisibleSpec => cfg.invisible_spec,
            OverlayKnob::CleanupSpec => cfg.cleanup_spec,
            OverlayKnob::Dawg => cfg.dawg,
            OverlayKnob::FlushPredictorsOnSwitch => cfg.flush_predictors_on_switch,
            OverlayKnob::NoIndirectPrediction => cfg.no_indirect_prediction,
            OverlayKnob::RsbStuffing => cfg.rsb_stuffing,
            OverlayKnob::Kpti => cfg.kpti,
            OverlayKnob::SsbDisable => cfg.ssb_disable,
            OverlayKnob::LazyFpu => cfg.lazy_fpu,
            OverlayKnob::TransientForwarding => cfg.transient_forwarding,
            OverlayKnob::MdsForwarding => cfg.mds_forwarding,
            OverlayKnob::L1tfForwarding => cfg.l1tf_forwarding,
        }
    }

    fn field_mut(self, cfg: &mut UarchConfig) -> &mut bool {
        match self {
            OverlayKnob::NoSpeculativeLoads => &mut cfg.no_speculative_loads,
            OverlayKnob::EagerPermissionCheck => &mut cfg.eager_permission_check,
            OverlayKnob::Nda => &mut cfg.nda,
            OverlayKnob::Stt => &mut cfg.stt,
            OverlayKnob::DelayOnMiss => &mut cfg.delay_on_miss,
            OverlayKnob::InvisibleSpec => &mut cfg.invisible_spec,
            OverlayKnob::CleanupSpec => &mut cfg.cleanup_spec,
            OverlayKnob::Dawg => &mut cfg.dawg,
            OverlayKnob::FlushPredictorsOnSwitch => &mut cfg.flush_predictors_on_switch,
            OverlayKnob::NoIndirectPrediction => &mut cfg.no_indirect_prediction,
            OverlayKnob::RsbStuffing => &mut cfg.rsb_stuffing,
            OverlayKnob::Kpti => &mut cfg.kpti,
            OverlayKnob::SsbDisable => &mut cfg.ssb_disable,
            OverlayKnob::LazyFpu => &mut cfg.lazy_fpu,
            OverlayKnob::TransientForwarding => &mut cfg.transient_forwarding,
            OverlayKnob::MdsForwarding => &mut cfg.mds_forwarding,
            OverlayKnob::L1tfForwarding => &mut cfg.l1tf_forwarding,
        }
    }

    /// Stable machine-readable token (the `UarchConfig` field name).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            OverlayKnob::NoSpeculativeLoads => "no_speculative_loads",
            OverlayKnob::EagerPermissionCheck => "eager_permission_check",
            OverlayKnob::Nda => "nda",
            OverlayKnob::Stt => "stt",
            OverlayKnob::DelayOnMiss => "delay_on_miss",
            OverlayKnob::InvisibleSpec => "invisible_spec",
            OverlayKnob::CleanupSpec => "cleanup_spec",
            OverlayKnob::Dawg => "dawg",
            OverlayKnob::FlushPredictorsOnSwitch => "flush_predictors_on_switch",
            OverlayKnob::NoIndirectPrediction => "no_indirect_prediction",
            OverlayKnob::RsbStuffing => "rsb_stuffing",
            OverlayKnob::Kpti => "kpti",
            OverlayKnob::SsbDisable => "ssb_disable",
            OverlayKnob::LazyFpu => "lazy_fpu",
            OverlayKnob::TransientForwarding => "transient_forwarding",
            OverlayKnob::MdsForwarding => "mds_forwarding",
            OverlayKnob::L1tfForwarding => "l1tf_forwarding",
        }
    }
}

impl fmt::Display for OverlayKnob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One recorded knob write: `knob = value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KnobWrite {
    /// The configuration knob written.
    pub knob: OverlayKnob,
    /// The value written.
    pub value: bool,
}

impl fmt::Display for KnobWrite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.knob, self.value)
    }
}

/// A defense's machine-level effect: an ordered, `'static` list of
/// recorded knob writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overlay(pub &'static [KnobWrite]);

impl Overlay {
    /// The recorded writes, in catalog order.
    #[must_use]
    pub fn writes(&self) -> &'static [KnobWrite] {
        self.0
    }

    /// Applies every write to `cfg`, in order.
    pub fn apply(&self, cfg: &mut UarchConfig) {
        for w in self.0 {
            w.knob.write(cfg, w.value);
        }
    }

    /// The writes that would actually *change* `base` (knobs already at
    /// the written value are omitted).
    #[must_use]
    pub fn diff(&self, base: &UarchConfig) -> Vec<KnobWrite> {
        self.0
            .iter()
            .copied()
            .filter(|w| w.knob.read(base) != w.value)
            .collect()
    }

    /// A stable 64-bit FNV-1a digest of the writes (knob tokens and
    /// values, in order). Two defenses with the same machine effect — e.g.
    /// LFENCE and MFENCE — share a fingerprint, which the cover search
    /// uses to deduplicate candidates.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for w in self.0 {
            eat(w.knob.token().as_bytes());
            eat(&[b'=', u8::from(w.value), 0]);
        }
        h
    }
}

impl fmt::Display for Overlay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, w) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KPTI: Overlay = Overlay(&[KnobWrite {
        knob: OverlayKnob::Kpti,
        value: true,
    }]);

    const SILICON: Overlay = Overlay(&[
        KnobWrite {
            knob: OverlayKnob::TransientForwarding,
            value: false,
        },
        KnobWrite {
            knob: OverlayKnob::MdsForwarding,
            value: false,
        },
    ]);

    #[test]
    fn apply_writes_the_named_fields() {
        let mut cfg = UarchConfig::default();
        KPTI.apply(&mut cfg);
        assert!(cfg.kpti);
        SILICON.apply(&mut cfg);
        assert!(!cfg.transient_forwarding);
        assert!(!cfg.mds_forwarding);
    }

    #[test]
    fn read_round_trips_every_knob() {
        let mut cfg = UarchConfig::default();
        for knob in [
            OverlayKnob::NoSpeculativeLoads,
            OverlayKnob::EagerPermissionCheck,
            OverlayKnob::Nda,
            OverlayKnob::Stt,
            OverlayKnob::DelayOnMiss,
            OverlayKnob::InvisibleSpec,
            OverlayKnob::CleanupSpec,
            OverlayKnob::Dawg,
            OverlayKnob::FlushPredictorsOnSwitch,
            OverlayKnob::NoIndirectPrediction,
            OverlayKnob::RsbStuffing,
            OverlayKnob::Kpti,
            OverlayKnob::SsbDisable,
            OverlayKnob::LazyFpu,
            OverlayKnob::TransientForwarding,
            OverlayKnob::MdsForwarding,
            OverlayKnob::L1tfForwarding,
        ] {
            let before = knob.read(&cfg);
            knob.write(&mut cfg, !before);
            assert_eq!(knob.read(&cfg), !before, "{knob}");
            knob.write(&mut cfg, before);
            assert_eq!(cfg, UarchConfig::default(), "{knob} restored");
        }
    }

    #[test]
    fn diff_reports_only_effective_writes() {
        let base = UarchConfig::default();
        assert_eq!(KPTI.diff(&base).len(), 1);
        let mut hardened = base.clone();
        KPTI.apply(&mut hardened);
        assert!(KPTI.diff(&hardened).is_empty());
        // The silicon fix writes `false` to knobs that default to `true`.
        assert_eq!(SILICON.diff(&base).len(), 2);
    }

    #[test]
    fn fingerprints_distinguish_knob_and_value() {
        const KPTI_OFF: Overlay = Overlay(&[KnobWrite {
            knob: OverlayKnob::Kpti,
            value: false,
        }]);
        assert_ne!(KPTI.fingerprint(), KPTI_OFF.fingerprint());
        assert_ne!(KPTI.fingerprint(), SILICON.fingerprint());
        assert_eq!(KPTI.fingerprint(), KPTI.fingerprint());
    }

    #[test]
    fn display_forms() {
        assert_eq!(KPTI.to_string(), "kpti=true");
        assert_eq!(
            SILICON.to_string(),
            "transient_forwarding=false mds_forwarding=false"
        );
    }
}
