//! Reusable patched-analysis sessions: one indexed attack graph, many
//! candidate defense stacks.
//!
//! Every graph-level verdict in this crate is "insert the stack's strategy
//! edges, re-ask Theorem 1". The one-shot path
//! ([`DefenseStack::graph_sufficient`]) rebuilds the attack's graph — and
//! its reachability closure — per call, which is fine for a single
//! question but dominates patch-heavy loops: a campaign asks the same
//! attack about every defense stack, and the cover search asks it about
//! every candidate combination of an exponential search.
//!
//! A [`PatchSession`] builds the attack's graph **once**, forces its
//! closure, and takes a [`Tsg::checkpoint`](tsg::Tsg::checkpoint). Each
//! [`PatchSession::graph_sufficient`] call then applies the candidate
//! stack's edge set *incrementally* (the live index absorbs each inserted
//! edge in place) and rolls back to the checkpoint afterwards — restoring
//! the warm closure — so the per-candidate cost is the handful of strategy
//! edges, not a graph construction plus a full `O(V·E/64)` closure
//! rebuild.

use crate::{patch_strategy, DefenseStack, PatchError, Strategy};
use attacks::{Attack, AttackError};
use tsg::{NodeKind, SecurityAnalysis, TsgCheckpoint};

/// A reusable graph-verdict evaluator for one attack: the attack's
/// indexed graph plus a rollback checkpoint, amortizing graph
/// construction and closure building over many candidate stacks.
///
/// ```
/// use defenses::{DefenseStack, PatchSession};
///
/// let mut session = PatchSession::new(&attacks::spectre_v1::SpectreV1);
/// for stack in ["lfence", "nda", "kpti+retpoline"] {
///     let stack = DefenseStack::parse(stack).unwrap();
///     let verdict = session.graph_sufficient(&stack).unwrap();
///     assert_eq!(verdict, stack.graph_sufficient(&attacks::spectre_v1::SpectreV1).unwrap());
/// }
/// ```
#[derive(Debug)]
pub struct PatchSession {
    analysis: SecurityAnalysis,
    base: TsgCheckpoint,
}

impl PatchSession {
    /// Builds `attack`'s graph, forces its reachability closure, and
    /// checkpoints — the one-time cost every later candidate amortizes.
    #[must_use]
    pub fn new(attack: &dyn Attack) -> Self {
        Self::from_analysis(attack.graph())
    }

    /// Wraps an already-built analysis — e.g. one lifted from a generated
    /// program by `analyzer::lift` — forcing its closure and
    /// checkpointing exactly like [`PatchSession::new`].
    #[must_use]
    pub fn from_analysis(analysis: SecurityAnalysis) -> Self {
        // Force the closure *before* checkpointing so every rollback
        // restores a warm index.
        let _ = analysis.graph().reachability();
        let base = analysis.graph().checkpoint();
        PatchSession { analysis, base }
    }

    /// The attack's unpatched analysis (the state between candidates).
    #[must_use]
    pub fn analysis(&self) -> &SecurityAnalysis {
        &self.analysis
    }

    /// Theorem 1 on the *unpatched* graph: does an authorization race
    /// with a secret access? This is the campaign's per-attack baseline
    /// graph verdict, answered from the session's warm index.
    #[must_use]
    pub fn graph_race(&self) -> bool {
        let g = self.analysis.graph();
        let idx = g.reachability();
        let auths = g.nodes_of_kind(NodeKind::is_authorization);
        let accesses = g.nodes_of_kind(NodeKind::is_secret_access);
        auths
            .iter()
            .any(|&a| accesses.iter().any(|&s| idx.races(a, s)))
    }

    /// [`DefenseStack::graph_sufficient`] against this session's attack:
    /// applies the stack's distinct strategy edge sets incrementally,
    /// reads the verdict, and rolls the graph (and its warm closure) back
    /// to the unpatched checkpoint.
    ///
    /// # Errors
    ///
    /// [`AttackError::Tsg`] if the graph rejects an inserted edge; the
    /// session is rolled back and stays usable either way.
    pub fn graph_sufficient(&mut self, stack: &DefenseStack) -> Result<Option<bool>, AttackError> {
        let verdict = graph_verdict(&mut self.analysis, stack);
        self.analysis.graph_mut().rollback(&self.base);
        verdict
    }
}

/// The graph-level sufficiency verdict for `stack` on an attack analysis,
/// mutating `sa` in place (callers either discard the analysis —
/// [`DefenseStack::graph_sufficient`] — or roll it back —
/// [`PatchSession`]). This is the single definition of the verdict rule;
/// see [`DefenseStack::graph_sufficient`] for its semantics.
pub(crate) fn graph_verdict(
    sa: &mut SecurityAnalysis,
    stack: &DefenseStack,
) -> Result<Option<bool>, AttackError> {
    let mut inserted: Vec<Strategy> = Vec::new();
    for strategy in stack.strategies() {
        match patch_strategy(sa, strategy) {
            Ok(_) => inserted.push(strategy),
            Err(PatchError::Graph(e)) => return Err(AttackError::Tsg(e)),
            // No insertion point for this strategy in this graph.
            Err(_) => {}
        }
    }
    if inserted.is_empty() {
        return Ok(None);
    }
    let vulns = sa.vulnerabilities()?;
    let secure = if inserted.contains(&Strategy::PreventAccess) {
        vulns.is_empty()
    } else if inserted
        .iter()
        .any(|s| matches!(s, Strategy::PreventUse | Strategy::PreventSend))
    {
        !vulns
            .iter()
            .any(|v| matches!(v.protected_kind, tsg::NodeKind::Send))
    } else {
        // ④ only: see DefenseStack::graph_sufficient.
        true
    };
    Ok(Some(secure))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{names, presets};

    fn stack(expr: &str) -> DefenseStack {
        DefenseStack::parse(expr).expect("valid stack expression")
    }

    #[test]
    fn session_verdicts_match_one_shot_for_every_catalog_stack() {
        for attack in [
            &attacks::spectre_v1::SpectreV1 as &dyn Attack,
            &attacks::spectre_v2::SpectreV2,
            &attacks::meltdown::Meltdown,
        ] {
            let mut session = PatchSession::new(attack);
            for d in crate::registry() {
                let s = DefenseStack::single(*d);
                assert_eq!(
                    session.graph_sufficient(&s).unwrap(),
                    s.graph_sufficient(attack).unwrap(),
                    "{} vs {}",
                    d.name,
                    attack.info().name
                );
            }
        }
    }

    #[test]
    fn session_is_reusable_across_bundles_and_orders() {
        // Same session, many stacks — including ④ patches that add a
        // node — must keep answering like fresh evaluations.
        let mut session = PatchSession::new(&attacks::spectre_v2::SpectreV2);
        let stacks = [
            stack("lfence"),
            presets::linux_default(),
            stack("ibpb"),
            presets::linux_default(),
            stack("stt+retpoline"),
            stack("lfence"),
        ];
        for s in &stacks {
            assert_eq!(
                session.graph_sufficient(s).unwrap(),
                s.graph_sufficient(&attacks::spectre_v2::SpectreV2).unwrap(),
                "{s}"
            );
        }
        // The session's graph is back to its unpatched size every time.
        let fresh = attacks::spectre_v2::SpectreV2.graph();
        assert_eq!(
            session.analysis().graph().node_count(),
            fresh.graph().node_count()
        );
        assert_eq!(
            session.analysis().graph().edge_count(),
            fresh.graph().edge_count()
        );
    }

    #[test]
    fn graph_race_matches_the_campaign_definition() {
        // Undefended catalog graphs race by construction.
        for attack in attacks::registry().iter().take(6) {
            let session = PatchSession::new(*attack);
            assert!(session.graph_race(), "{}", attack.info().name);
        }
        // A ① patch that closes everything removes the race — on a fresh
        // graph, not through the session (which always rolls back).
        let mut session = PatchSession::new(&attacks::spectre_v1::SpectreV1);
        let lfence = DefenseStack::single(*crate::find(names::LFENCE).unwrap());
        assert_eq!(session.graph_sufficient(&lfence).unwrap(), Some(true));
        assert!(session.graph_race(), "rollback must restore the race");
    }
}
