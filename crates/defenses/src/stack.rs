//! Composable defense stacks: ordered bundles of catalog defenses,
//! evaluated as one unit at both the graph and the machine level.
//!
//! The paper's §V-B warning is that **no single defense blocks every
//! attack** — Table II's industry mitigations ship as *bundles* (the real
//! Linux posture is KPTI + retpoline + IBPB + RSB stuffing, not any one of
//! them), and the four Figure-8 strategies are combinable edge-insertion
//! points on the same graph. A [`DefenseStack`] makes the bundle the unit
//! of evaluation:
//!
//! * **graph level** ([`DefenseStack::graph_sufficient`]): insert *all*
//!   member strategy edges into an attack graph and re-ask Theorem 1, so
//!   sufficiency of the stack is proved, not just tested;
//! * **machine level** ([`DefenseStack::apply`]): fold every member's
//!   recorded [`Overlay`](crate::Overlay) over the base configuration.
//!   Conflicts — two members writing the same knob *differently* — are a
//!   typed [`StackError::ConflictingKnob`] at construction time, never a
//!   silent last-writer-wins;
//! * **grammar** ([`DefenseStack::parse`] / `Display`): the
//!   `"KPTI+Retpoline+IBPB"` spelling shared by the library and the
//!   `campaign` CLI. Members resolve by short token (`kpti`) or full
//!   catalog name; a singleton stack displays exactly as the defense's
//!   name, so stack-valued artifacts are byte-compatible with the old
//!   single-defense ones.
//!
//! ```
//! use defenses::DefenseStack;
//! let linux = DefenseStack::parse("kpti+retpoline+ibpb+rsb-stuffing").unwrap();
//! assert_eq!(linux.to_string(), "KAISER/KPTI+Retpoline+IBPB+RSB stuffing");
//! assert_eq!(linux.members().len(), 4);
//! ```

use crate::overlay::{KnobWrite, OverlayKnob};
use crate::{Defense, Strategy};
use attacks::{Attack, AttackError};
use std::error::Error;
use std::fmt;
use uarch::UarchConfig;

/// Why a stack could not be built (or parsed).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StackError {
    /// A stack needs at least one member.
    Empty,
    /// The same defense appears twice.
    Duplicate(String),
    /// Two members write the same machine knob with different values —
    /// deploying them together would silently make one of them a lie.
    ConflictingKnob {
        /// The contested configuration knob.
        knob: OverlayKnob,
        /// The member that wrote the knob first, and its value.
        first: &'static str,
        /// The member that tried to write the opposite value.
        second: &'static str,
        /// The value `first` wrote (`second` wrote the negation).
        value: bool,
    },
    /// A stack expression named a defense that is not in the catalog.
    UnknownDefense(String),
}

impl fmt::Display for StackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackError::Empty => f.write_str("a defense stack needs at least one member"),
            StackError::Duplicate(name) => {
                write!(f, "defense '{name}' appears twice in the stack")
            }
            StackError::ConflictingKnob {
                knob,
                first,
                second,
                value,
            } => write!(
                f,
                "conflicting stack: '{first}' sets {knob}={value} but \
                 '{second}' sets {knob}={}; the two mitigations rewrite the \
                 same mechanism and cannot be deployed together",
                !value
            ),
            StackError::UnknownDefense(name) => write!(
                f,
                "unknown defense '{name}' in stack expression (use a catalog \
                 token like 'kpti' or a full name like 'KAISER/KPTI')"
            ),
        }
    }
}

impl Error for StackError {}

/// An ordered, conflict-checked set of catalog defenses evaluated as one
/// deployment — at the graph level ([`DefenseStack::graph_sufficient`]:
/// all member strategy edges inserted, Theorem 1 re-asked) and at the
/// machine level ([`DefenseStack::apply`]: conflict-checked overlay
/// folding), with the `"KPTI+Retpoline+IBPB"` parse/display grammar
/// shared by the library and the `campaign` CLI.
#[derive(Debug, Clone)]
pub struct DefenseStack {
    members: Vec<Defense>,
    /// Members' full names joined with `+` (the canonical spelling; for a
    /// singleton stack this is exactly the defense's name).
    name: String,
}

impl PartialEq for DefenseStack {
    fn eq(&self, other: &Self) -> bool {
        self.members.len() == other.members.len()
            && self
                .members
                .iter()
                .zip(&other.members)
                .all(|(a, b)| a.name == b.name && a.strategy == b.strategy)
    }
}

impl Eq for DefenseStack {}

impl From<Defense> for DefenseStack {
    fn from(defense: Defense) -> Self {
        DefenseStack::single(defense)
    }
}

impl fmt::Display for DefenseStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl std::str::FromStr for DefenseStack {
    type Err = StackError;

    fn from_str(s: &str) -> Result<Self, StackError> {
        DefenseStack::parse(s)
    }
}

impl DefenseStack {
    /// Builds a stack from ordered members, rejecting empty stacks,
    /// duplicate members, and conflicting overlay writes.
    ///
    /// # Errors
    ///
    /// [`StackError::Empty`], [`StackError::Duplicate`], or
    /// [`StackError::ConflictingKnob`].
    pub fn new(members: Vec<Defense>) -> Result<Self, StackError> {
        if members.is_empty() {
            return Err(StackError::Empty);
        }
        let mut written: Vec<(OverlayKnob, bool, &'static str)> = Vec::new();
        for (i, d) in members.iter().enumerate() {
            if members[..i].iter().any(|prev| prev.name == d.name) {
                return Err(StackError::Duplicate(d.name.to_owned()));
            }
            let Some(overlay) = d.overlay() else { continue };
            for w in overlay.writes() {
                match written.iter().find(|(k, _, _)| *k == w.knob) {
                    Some(&(knob, value, first)) if value != w.value => {
                        return Err(StackError::ConflictingKnob {
                            knob,
                            first,
                            second: d.name,
                            value,
                        });
                    }
                    Some(_) => {}
                    None => written.push((w.knob, w.value, d.name)),
                }
            }
        }
        let name = members.iter().map(|d| d.name).collect::<Vec<_>>().join("+");
        Ok(DefenseStack { members, name })
    }

    /// The stack containing exactly one defense. Infallible: a single
    /// member can neither duplicate nor conflict.
    #[must_use]
    pub fn single(defense: Defense) -> Self {
        DefenseStack {
            name: defense.name.to_owned(),
            members: vec![defense],
        }
    }

    /// Parses a `+`-joined stack expression. Each member resolves by its
    /// short catalog token (`kpti`, case-insensitive) or its full name
    /// (`KAISER/KPTI`) — see [`crate::resolve`].
    ///
    /// # Errors
    ///
    /// [`StackError::UnknownDefense`] for an unresolvable member, plus
    /// everything [`DefenseStack::new`] rejects.
    pub fn parse(expr: &str) -> Result<Self, StackError> {
        let members = expr
            .split('+')
            .map(str::trim)
            .map(|part| {
                crate::resolve(part)
                    .copied()
                    .ok_or_else(|| StackError::UnknownDefense(part.to_owned()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Self::new(members)
    }

    /// The members, in deployment order.
    #[must_use]
    pub fn members(&self) -> &[Defense] {
        &self.members
    }

    /// The canonical spelling: members' full names joined with `+`. For a
    /// singleton stack this equals the defense's name exactly.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The short spelling: members' tokens joined with `+`
    /// (`"kpti+retpoline"`), as accepted by [`DefenseStack::parse`] and
    /// the `campaign` CLI.
    #[must_use]
    pub fn tokens(&self) -> String {
        self.members
            .iter()
            .map(|d| d.token)
            .collect::<Vec<_>>()
            .join("+")
    }

    /// The *distinct* member strategies, in first-appearance order — the
    /// edge-insertion points the stack exercises on an attack graph.
    #[must_use]
    pub fn strategies(&self) -> Vec<Strategy> {
        let mut out: Vec<Strategy> = Vec::new();
        for d in &self.members {
            if !out.contains(&d.strategy) {
                out.push(d.strategy);
            }
        }
        out
    }

    /// The distinct strategies as a stable `+`-joined token string
    /// (`"prevent_access+clear_predictions"`); for a singleton stack this
    /// is exactly the member's strategy token.
    #[must_use]
    pub fn strategy_token(&self) -> String {
        self.strategies()
            .iter()
            .map(|s| s.token())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Whether at least one member has an executable hardware model.
    #[must_use]
    pub fn is_modeled(&self) -> bool {
        self.members.iter().any(Defense::is_modeled)
    }

    /// The merged machine-level writes of all members, first-writer order,
    /// duplicates removed (conflicts were rejected at construction).
    #[must_use]
    pub fn overlay_writes(&self) -> Vec<KnobWrite> {
        let mut out: Vec<KnobWrite> = Vec::new();
        for d in &self.members {
            let Some(overlay) = d.overlay() else { continue };
            for &w in overlay.writes() {
                if !out.iter().any(|have| have.knob == w.knob) {
                    out.push(w);
                }
            }
        }
        out
    }

    /// Folds every member's overlay over `base`, producing the machine
    /// the whole bundle deploys. Returns `None` when no member has a
    /// hardware model (an all-software stack is demonstrated at the graph
    /// level only, like a software-only single defense).
    ///
    /// The fold is order-independent by construction: duplicate writes
    /// were deduplicated and conflicting ones rejected in
    /// [`DefenseStack::new`].
    #[must_use]
    pub fn apply(&self, base: &UarchConfig) -> Option<UarchConfig> {
        if !self.is_modeled() {
            return None;
        }
        let mut cfg = base.clone();
        for w in self.overlay_writes() {
            w.knob.write(&mut cfg, w.value);
        }
        Some(cfg)
    }

    /// A stable 64-bit digest of the stack's identity: member names and
    /// strategies plus the merged overlay writes.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for d in &self.members {
            eat(d.name.as_bytes());
            eat(&[0]);
            eat(d.strategy.token().as_bytes());
            eat(&[0]);
        }
        eat(&[1]);
        for w in self.overlay_writes() {
            eat(w.knob.token().as_bytes());
            eat(&[b'=', u8::from(w.value), 0]);
        }
        h
    }

    /// Applies every distinct member strategy to the attack's graph and
    /// asks Theorem 1 whether the stack closes the leak path — the
    /// *proved* (graph-level) claim about the bundle.
    ///
    /// Strategies with no insertion point in this graph are skipped (like
    /// a single defense whose strategy does not apply); if **no** member
    /// strategy applies, the answer is `None`. Otherwise the stack is
    /// sufficient when its strongest inserted claim holds, mirroring the
    /// single-defense rule: a ① member must leave *no* race at all, a
    /// ②/③ member must leave no race on the *send* node (the paper's
    /// relaxed model), and a ④-only stack's claim is the successful
    /// insertion itself (the mis-training channel exists only as setup
    /// ordering in the static graph).
    ///
    /// Asking the same attack about many stacks? A
    /// [`PatchSession`](crate::PatchSession) builds the graph once and
    /// applies/rolls back each stack's edges incrementally instead.
    ///
    /// # Errors
    ///
    /// [`AttackError::Tsg`] if the graph rejects an inserted edge.
    pub fn graph_sufficient(&self, attack: &dyn Attack) -> Result<Option<bool>, AttackError> {
        let mut sa = attack.graph();
        crate::session::graph_verdict(&mut sa, self)
    }
}

/// Curated industry/academia bundles — the stacks real deployments (and
/// the paper's discussion) actually compare.
pub mod presets {
    use super::DefenseStack;
    use crate::names;

    fn stack(members: &[&str]) -> DefenseStack {
        DefenseStack::new(
            members
                .iter()
                .map(|n| *crate::find(n).expect("preset member is in the catalog"))
                .collect(),
        )
        .expect("preset stacks are conflict-free")
    }

    /// The real post-2018 Linux kernel posture: KPTI + retpoline + IBPB +
    /// RSB stuffing. Blocks the Meltdown and predictor-injection families;
    /// leaves same-context Spectre v1-style leaks to software masking —
    /// the canonical "bundle that still needs §V-B care".
    #[must_use]
    pub fn linux_default() -> DefenseStack {
        stack(&[
            names::KPTI,
            names::RETPOLINE,
            names::IBPB,
            names::RSB_STUFFING,
        ])
    }

    /// Microcode-update mitigations only (no kernel changes): IBRS +
    /// STIBP + IBPB + SSBS.
    #[must_use]
    pub fn microcode_only() -> DefenseStack {
        stack(&[names::IBRS, names::STIBP, names::IBPB, names::SSBS])
    }

    /// The academic taint-tracking posture: STT alone (strategy ③ at the
    /// transmitter chokepoint).
    #[must_use]
    pub fn academic_stt() -> DefenseStack {
        stack(&[names::STT])
    }

    /// The academic invisible-speculation posture: InvisiSpec shadow
    /// fills plus DAWG cross-domain partitioning.
    #[must_use]
    pub fn academic_invisible() -> DefenseStack {
        stack(&[names::INVISISPEC, names::DAWG])
    }

    /// Every preset with its CLI token, in presentation order.
    #[must_use]
    pub fn all() -> Vec<(&'static str, DefenseStack)> {
        vec![
            ("linux-default", linux_default()),
            ("microcode-only", microcode_only()),
            ("academic-stt", academic_stt()),
            ("academic-invisible", academic_invisible()),
        ]
    }

    /// The preset for a CLI token, if any.
    #[must_use]
    pub fn find(token: &str) -> Option<DefenseStack> {
        all()
            .into_iter()
            .find(|(t, _)| t.eq_ignore_ascii_case(token))
            .map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlay::Overlay;
    use crate::{names, Origin};

    fn defense(name: &str) -> Defense {
        *crate::find(name).expect("defense exists")
    }

    /// A test-only defense whose overlay *re-enables* lazy FPU switching —
    /// the opposite of what Eager FPU switch writes.
    fn lazy_fpu_enabler() -> Defense {
        Defense {
            name: "Lazy FPU (test)",
            token: "lazy-fpu-test",
            origin: Origin::Industry,
            strategy: Strategy::PreventAccess,
            mechanism: "test-only conflicting overlay",
            overlay: Some(Overlay(&[KnobWrite {
                knob: OverlayKnob::LazyFpu,
                value: true,
            }])),
        }
    }

    #[test]
    fn parse_display_round_trip_and_singleton_identity() {
        let s = DefenseStack::parse("kpti+retpoline+ibpb").unwrap();
        assert_eq!(s.to_string(), "KAISER/KPTI+Retpoline+IBPB");
        assert_eq!(s.tokens(), "kpti+retpoline+ibpb");
        // The canonical spelling parses back to the same stack.
        assert_eq!(DefenseStack::parse(s.name()).unwrap(), s);
        // Full names (with spaces) work too, and mix with tokens.
        assert_eq!(
            DefenseStack::parse("KAISER/KPTI + Retpoline + ibpb").unwrap(),
            s
        );
        // A singleton stack displays exactly as the defense's name.
        let single = DefenseStack::single(defense(names::NDA));
        assert_eq!(single.name(), names::NDA);
        assert_eq!("nda".parse::<DefenseStack>().unwrap(), single);
    }

    #[test]
    fn construction_rejects_empty_duplicate_unknown() {
        assert_eq!(DefenseStack::new(Vec::new()), Err(StackError::Empty));
        assert!(matches!(
            DefenseStack::parse("kpti+kpti"),
            Err(StackError::Duplicate(_))
        ));
        match DefenseStack::parse("kpti+warp-drive") {
            Err(StackError::UnknownDefense(name)) => assert_eq!(name, "warp-drive"),
            other => panic!("expected UnknownDefense, got {other:?}"),
        }
        assert!(DefenseStack::parse("").is_err());
    }

    #[test]
    fn conflicting_knob_is_a_typed_construction_error() {
        let err = DefenseStack::new(vec![defense(names::EAGER_FPU_SWITCH), lazy_fpu_enabler()])
            .unwrap_err();
        match err {
            StackError::ConflictingKnob {
                knob,
                first,
                second,
                value,
            } => {
                assert_eq!(knob, OverlayKnob::LazyFpu);
                assert_eq!(first, names::EAGER_FPU_SWITCH);
                assert_eq!(second, "Lazy FPU (test)");
                assert!(!value);
            }
            other => panic!("expected ConflictingKnob, got {other:?}"),
        }
        assert!(err.to_string().contains("lazy_fpu"));
        // Order does not matter: the conflict is symmetric.
        assert!(matches!(
            DefenseStack::new(vec![lazy_fpu_enabler(), defense(names::EAGER_FPU_SWITCH)]),
            Err(StackError::ConflictingKnob { .. })
        ));
    }

    #[test]
    fn same_knob_same_value_members_compose() {
        // IBRS and IBPB both write flush_predictors_on_switch=true: agreeing
        // writes are composition, not conflict.
        let s = DefenseStack::parse("ibrs+ibpb").unwrap();
        assert_eq!(s.overlay_writes().len(), 1);
        let cfg = s.apply(&UarchConfig::default()).unwrap();
        assert!(cfg.flush_predictors_on_switch);
    }

    #[test]
    fn apply_folds_all_member_overlays() {
        let linux = presets::linux_default();
        let cfg = linux.apply(&UarchConfig::default()).unwrap();
        assert!(cfg.kpti);
        assert!(cfg.no_indirect_prediction);
        assert!(cfg.flush_predictors_on_switch);
        assert!(cfg.rsb_stuffing);
        // Order never changes the folded machine.
        let mut reversed: Vec<Defense> = linux.members().to_vec();
        reversed.reverse();
        let reversed = DefenseStack::new(reversed).unwrap();
        assert_eq!(reversed.apply(&UarchConfig::default()).unwrap(), cfg);
        assert_ne!(reversed.name(), linux.name());
    }

    #[test]
    fn all_software_stack_has_no_machine_model() {
        let s = DefenseStack::parse("mask-coarse+sabc").unwrap();
        assert!(!s.is_modeled());
        assert!(s.apply(&UarchConfig::default()).is_none());
        assert!(s.overlay_writes().is_empty());
        // Mixing in one modeled member makes the stack modeled.
        let mixed = DefenseStack::parse("mask-coarse+lfence").unwrap();
        assert!(mixed.is_modeled());
        assert!(
            mixed
                .apply(&UarchConfig::default())
                .unwrap()
                .no_speculative_loads
        );
    }

    #[test]
    fn strategies_are_distinct_in_member_order() {
        let s = DefenseStack::parse("kpti+retpoline+ibpb+rsb-stuffing").unwrap();
        assert_eq!(
            s.strategies(),
            vec![Strategy::PreventAccess, Strategy::ClearPredictions]
        );
        assert_eq!(s.strategy_token(), "prevent_access+clear_predictions");
        let single = DefenseStack::single(defense(names::NDA));
        assert_eq!(single.strategy_token(), "prevent_use");
    }

    #[test]
    fn fingerprints_distinguish_membership_and_order() {
        let a = DefenseStack::parse("kpti+retpoline").unwrap();
        let b = DefenseStack::parse("retpoline+kpti").unwrap();
        let c = DefenseStack::parse("kpti").unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(
            a.fingerprint(),
            DefenseStack::parse("kpti+retpoline").unwrap().fingerprint()
        );
    }

    #[test]
    fn graph_sufficiency_matches_single_defense_rules() {
        // Singleton ①: closes everything on a Spectre graph.
        let lfence = DefenseStack::single(defense(names::LFENCE));
        assert_eq!(
            lfence
                .graph_sufficient(&attacks::spectre_v1::SpectreV1)
                .unwrap(),
            Some(true)
        );
        // Singleton ③ leaves the access race but closes the send.
        let stt = DefenseStack::single(defense(names::STT));
        assert_eq!(
            stt.graph_sufficient(&attacks::meltdown::Meltdown).unwrap(),
            Some(true)
        );
        // A ①+④ bundle: the ① claim dominates (no race at all).
        let linux = presets::linux_default();
        assert_eq!(
            linux
                .graph_sufficient(&attacks::spectre_v2::SpectreV2)
                .unwrap(),
            Some(true)
        );
    }

    #[test]
    fn presets_are_well_formed() {
        for (token, preset) in presets::all() {
            assert!(!preset.members().is_empty(), "{token} is empty");
            assert!(preset.is_modeled(), "{token} has no machine model");
            assert_eq!(presets::find(token).unwrap(), preset);
            // Every preset spelling round-trips through the grammar.
            assert_eq!(DefenseStack::parse(preset.name()).unwrap(), preset);
        }
        assert!(presets::find("windows-default").is_none());
        assert_eq!(presets::linux_default().members().len(), 4);
    }
}
