//! Graph-level defense application: inserting the missing security
//! dependency edge at the node a strategy protects.

use crate::Strategy;
use std::error::Error;
use std::fmt;
use tsg::{EdgeKind, NodeKind, SecurityAnalysis, TsgError};

/// Errors from graph patching.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PatchError {
    /// The graph has no node of the kind the strategy protects.
    NoTargetNode(Strategy),
    /// The graph has no authorization node.
    NoAuthorization,
    /// The underlying graph rejected the edge.
    Graph(TsgError),
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::NoTargetNode(s) => {
                write!(f, "graph has no node for strategy {s}")
            }
            PatchError::NoAuthorization => f.write_str("graph has no authorization node"),
            PatchError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for PatchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PatchError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TsgError> for PatchError {
    fn from(e: TsgError) -> Self {
        PatchError::Graph(e)
    }
}

/// Applies a strategy to an attack graph by inserting the corresponding
/// security-dependency edge(s) (the paper's red dashed arrows):
///
/// * ① authorization → every secret-access node,
/// * ② authorization → every use node,
/// * ③ authorization → every send node,
/// * ④ a new "Flush predictor" setup node ordered before the victim's
///   speculation trigger, severing predictor reuse (modeled as an edge from
///   the flush to every authorization-triggering node, plus removing the
///   mis-training setup's influence — represented by the `Security` edge
///   from the flush node to the mistrain node's successors).
///
/// Returns the number of security edges inserted.
///
/// # Errors
///
/// [`PatchError::NoTargetNode`] if the graph lacks a node of the protected
/// kind, [`PatchError::NoAuthorization`] if it lacks an authorization node.
pub fn patch_strategy(sa: &mut SecurityAnalysis, strategy: Strategy) -> Result<usize, PatchError> {
    let auths = sa.graph().nodes_of_kind(NodeKind::is_authorization);
    if auths.is_empty() {
        return Err(PatchError::NoAuthorization);
    }
    let targets = match strategy {
        Strategy::PreventAccess => sa.graph().nodes_of_kind(NodeKind::is_secret_access),
        Strategy::PreventUse => sa
            .graph()
            .nodes_of_kind(|k| matches!(k, NodeKind::UseSecret)),
        Strategy::PreventSend => sa.graph().nodes_of_kind(|k| matches!(k, NodeKind::Send)),
        Strategy::ClearPredictions => {
            // Insert a flush-predictor node before the whole victim flow.
            let setups = sa.graph().nodes_of_kind(|k| matches!(k, NodeKind::Setup));
            let flush = sa
                .graph_mut()
                .add_node("Flush predictor (context switch)", NodeKind::Setup);
            let mut inserted = 0;
            // The flush is ordered after the attacker's setup (mis-training)
            // and before the victim's authorization: whatever the attacker
            // trained is gone when the victim runs.
            for s in setups {
                if s != flush {
                    sa.graph_mut().add_edge(s, flush, EdgeKind::Program)?;
                    inserted += 1;
                }
            }
            for &a in &auths {
                sa.graph_mut().add_edge(flush, a, EdgeKind::Security)?;
                inserted += 1;
            }
            return Ok(inserted);
        }
    };
    if targets.is_empty() {
        return Err(PatchError::NoTargetNode(strategy));
    }
    let mut inserted = 0;
    for &a in &auths {
        for &t in &targets {
            sa.graph_mut().add_edge(a, t, EdgeKind::Security)?;
            inserted += 1;
        }
    }
    Ok(inserted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use attacks::Attack;

    /// Whether the declared (access/use/send) requirement of the given node
    /// kind still races after patching.
    fn still_races(sa: &SecurityAnalysis, kind_is: fn(NodeKind) -> bool) -> bool {
        sa.vulnerabilities()
            .unwrap()
            .iter()
            .any(|v| kind_is(v.protected_kind))
    }

    #[test]
    fn strategy1_closes_access_race_and_downstream() {
        let mut sa = attacks::spectre_v1::SpectreV1.graph();
        assert!(!sa.is_secure().unwrap());
        let n = patch_strategy(&mut sa, Strategy::PreventAccess).unwrap();
        assert!(n >= 1);
        // Access protected ⇒ use and send are transitively protected too.
        assert!(sa.is_secure().unwrap());
    }

    #[test]
    fn strategy2_closes_use_and_send_but_not_access() {
        let mut sa = attacks::spectre_v1::SpectreV1.graph();
        patch_strategy(&mut sa, Strategy::PreventUse).unwrap();
        // The access still races (the paper's relaxed security model)…
        assert!(still_races(&sa, NodeKind::is_secret_access));
        // …but the use and send no longer do.
        assert!(!still_races(&sa, |k| matches!(k, NodeKind::UseSecret)));
        assert!(!still_races(&sa, |k| matches!(k, NodeKind::Send)));
    }

    #[test]
    fn strategy3_closes_only_the_send() {
        let mut sa = attacks::meltdown::Meltdown.graph();
        patch_strategy(&mut sa, Strategy::PreventSend).unwrap();
        assert!(still_races(&sa, NodeKind::is_secret_access));
        assert!(still_races(&sa, |k| matches!(k, NodeKind::UseSecret)));
        assert!(!still_races(&sa, |k| matches!(k, NodeKind::Send)));
    }

    #[test]
    fn strategy4_inserts_flush_node() {
        let mut sa = attacks::spectre_v2::SpectreV2.graph();
        let before = sa.graph().node_count();
        patch_strategy(&mut sa, Strategy::ClearPredictions).unwrap();
        assert_eq!(sa.graph().node_count(), before + 1);
        let flush = sa
            .graph()
            .find_by_label("Flush predictor (context switch)")
            .unwrap();
        // The flush precedes the authorization.
        let auth = sa.graph().nodes_of_kind(NodeKind::is_authorization)[0];
        assert!(sa.graph().has_path(flush, auth).unwrap());
    }

    #[test]
    fn missing_nodes_reported() {
        let mut sa = SecurityAnalysis::new();
        assert_eq!(
            patch_strategy(&mut sa, Strategy::PreventAccess).unwrap_err(),
            PatchError::NoAuthorization
        );
        sa.graph_mut().add_node("auth", NodeKind::Authorization);
        assert_eq!(
            patch_strategy(&mut sa, Strategy::PreventUse).unwrap_err(),
            PatchError::NoTargetNode(Strategy::PreventUse)
        );
    }

    #[test]
    fn patch_error_display() {
        assert!(PatchError::NoAuthorization
            .to_string()
            .contains("authorization"));
        assert!(PatchError::NoTargetNode(Strategy::PreventSend)
            .to_string()
            .contains("③"));
    }
}
