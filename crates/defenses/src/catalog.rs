//! The defense catalog: Table II (industry) plus the §V-B academia
//! defenses, each mapped to one of the four strategies, with its
//! machine-level effect recorded as a typed [`Overlay`].

use crate::overlay::{KnobWrite, Overlay, OverlayKnob};
use crate::Strategy;
use std::fmt;
use uarch::UarchConfig;

/// Where a defense was proposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// Shipped or specified by CPU/OS vendors (Table II).
    Industry,
    /// Proposed in academic literature (§V-B).
    Academia,
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Origin::Industry => "industry",
            Origin::Academia => "academia",
        })
    }
}

/// One concrete defense.
#[derive(Debug, Clone, Copy)]
pub struct Defense {
    /// Canonical name, e.g. `"LFENCE"` or `"InvisiSpec"`.
    pub name: &'static str,
    /// Short ASCII token for the stack grammar (`"kpti"`, `"retpoline"`):
    /// what `DefenseStack::parse` and the `campaign` CLI accept in
    /// `--defenses kpti+retpoline` stack expressions.
    pub token: &'static str,
    /// Industry or academia.
    pub origin: Origin,
    /// The paper strategy the defense implements.
    pub strategy: Strategy,
    /// One-line mechanism description.
    pub mechanism: &'static str,
    /// The recorded machine-level effect, if the defense has a hardware
    /// model (`None` for purely software rewrites like address masking,
    /// which are demonstrated at the program level by the `analyzer`
    /// crate).
    pub(crate) overlay: Option<Overlay>,
}

impl Defense {
    /// Whether the defense has an executable hardware model.
    #[must_use]
    pub fn is_modeled(&self) -> bool {
        self.overlay.is_some()
    }

    /// The recorded machine-level overlay — the exact knob writes this
    /// defense performs — or `None` for software-only defenses.
    #[must_use]
    pub fn overlay(&self) -> Option<Overlay> {
        self.overlay
    }

    /// Produces the machine configuration with this defense enabled on top
    /// of `base`. Returns `None` for software-only defenses.
    #[must_use]
    pub fn configure(&self, base: &UarchConfig) -> Option<UarchConfig> {
        self.overlay.map(|overlay| {
            let mut cfg = base.clone();
            overlay.apply(&mut cfg);
            cfg
        })
    }
}

impl fmt::Display for Defense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} / {}]",
            self.name,
            self.origin,
            self.strategy.label()
        )
    }
}

/// Canonical defense-name constants — the single source for every string
/// that identifies a Table-II/§V-B defense, shared by the registry, the
/// bench binaries, and the campaign engine.
pub mod names {
    /// Intel/AMD load-serializing fence.
    pub const LFENCE: &str = "LFENCE";
    /// Memory-serializing fence.
    pub const MFENCE: &str = "MFENCE";
    /// Kernel page-table isolation.
    pub const KPTI: &str = "KAISER/KPTI";
    /// Indirect Branch Restricted Speculation.
    pub const IBRS: &str = "IBRS";
    /// Single Thread Indirect Branch Predictors.
    pub const STIBP: &str = "STIBP";
    /// Indirect Branch Prediction Barrier.
    pub const IBPB: &str = "IBPB";
    /// AMD BTB invalidation option.
    pub const BTB_INVALIDATION: &str = "BTB invalidation on context switch";
    /// Google's retpoline sequence.
    pub const RETPOLINE: &str = "Retpoline";
    /// Coarse address masking.
    pub const ADDRESS_MASKING_COARSE: &str = "Address masking (coarse)";
    /// Data-dependent address masking.
    pub const ADDRESS_MASKING_DATA_DEPENDENT: &str = "Address masking (data-dependent)";
    /// Speculative Store Bypass Barrier.
    pub const SSBB: &str = "SSBB";
    /// Speculative Store Bypass Safe mode bit.
    pub const SSBS: &str = "SSBS";
    /// RSB stuffing on context switches.
    pub const RSB_STUFFING: &str = "RSB stuffing";
    /// Eager FPU state switching.
    pub const EAGER_FPU_SWITCH: &str = "Eager FPU switch";
    /// Cascade Lake in-silicon fix.
    pub const IN_SILICON_FIX: &str = "In-silicon fix (Cascade Lake)";
    /// Context-sensitive fencing (micro-op injection).
    pub const CONTEXT_SENSITIVE_FENCING: &str = "Context-sensitive fencing";
    /// Secure Automatic Bounds Checking.
    pub const SABC: &str = "Secure Automatic Bounds Checking";
    /// Eager (pre-forwarding) permission checks.
    pub const EAGER_PERMISSION_CHECK: &str = "Eager permission check";
    /// Non-speculative Data Access.
    pub const NDA: &str = "NDA";
    /// SpecShield forwarding shield.
    pub const SPECSHIELD: &str = "SpecShield";
    /// SpectreGuard marked-secret protection.
    pub const SPECTREGUARD: &str = "SpectreGuard";
    /// ConTExT taint tracking.
    pub const CONTEXT: &str = "ConTExT";
    /// Speculative Taint Tracking.
    pub const STT: &str = "STT";
    /// SpecShieldERP+ address-derivation blocking.
    pub const SPECSHIELD_ERP: &str = "SpecShieldERP+";
    /// Conditional Speculation (delay speculative misses).
    pub const CONDITIONAL_SPECULATION: &str = "Conditional Speculation";
    /// Efficient Invisible Speculative Execution.
    pub const EFFICIENT_INVISIBLE_SPECULATION: &str = "Efficient Invisible Speculative Execution";
    /// InvisiSpec shadow-buffer loads.
    pub const INVISISPEC: &str = "InvisiSpec";
    /// SafeSpec shadow structures.
    pub const SAFESPEC: &str = "SafeSpec";
    /// CleanupSpec undo-on-squash.
    pub const CLEANUPSPEC: &str = "CleanupSpec";
    /// DAWG cache-way partitioning.
    pub const DAWG: &str = "DAWG";
}

/// Builds the `'static` write list of an overlay.
macro_rules! overlay {
    ($($knob:ident => $value:expr),+ $(,)?) => {
        Some(Overlay(&[$(KnobWrite {
            knob: OverlayKnob::$knob,
            value: $value,
        }),+]))
    };
}

macro_rules! defense {
    ($name:expr, $token:literal, $origin:ident, $strategy:ident, $mech:literal, $overlay:expr) => {
        Defense {
            name: $name,
            token: $token,
            origin: Origin::$origin,
            strategy: Strategy::$strategy,
            mechanism: $mech,
            overlay: $overlay,
        }
    };
}

/// The full defense catalog as a `'static` registry: every Table II
/// industry defense and every §V-B academia defense, in the paper's order.
///
/// This is the canonical iteration surface for the campaign engine, the
/// bench binaries and the examples; a defense added here shows up in every
/// matrix at once.
#[must_use]
pub fn registry() -> &'static [Defense] {
    static REGISTRY: &[Defense] = &[
        // ---- Industry (Table II) ----
        defense!(
            names::LFENCE,
            "lfence",
            Industry,
            PreventAccess,
            "serialize: no younger instruction executes before the fence retires",
            overlay![NoSpeculativeLoads => true]
        ),
        defense!(
            names::MFENCE,
            "mfence",
            Industry,
            PreventAccess,
            "serialize memory operations across the fence",
            overlay![NoSpeculativeLoads => true]
        ),
        defense!(
            names::KPTI,
            "kpti",
            Industry,
            PreventAccess,
            "unmap kernel pages in user mode: no PTE, no transient data path",
            overlay![Kpti => true]
        ),
        defense!(
            names::IBRS,
            "ibrs",
            Industry,
            ClearPredictions,
            "restrict indirect-branch speculation across privilege modes",
            overlay![FlushPredictorsOnSwitch => true]
        ),
        defense!(
            names::STIBP,
            "stibp",
            Industry,
            ClearPredictions,
            "do not share indirect-branch predictions between sibling threads",
            overlay![FlushPredictorsOnSwitch => true]
        ),
        defense!(
            names::IBPB,
            "ibpb",
            Industry,
            ClearPredictions,
            "barrier: flush the branch target buffer on context switch",
            overlay![FlushPredictorsOnSwitch => true]
        ),
        defense!(
            names::BTB_INVALIDATION,
            "btb-inval",
            Industry,
            ClearPredictions,
            "AMD option: invalidate predictor state when switching contexts",
            overlay![FlushPredictorsOnSwitch => true]
        ),
        defense!(
            names::RETPOLINE,
            "retpoline",
            Industry,
            ClearPredictions,
            "replace indirect branches with return sequences that never use the BTB",
            overlay![NoIndirectPrediction => true]
        ),
        defense!(
            names::ADDRESS_MASKING_COARSE,
            "mask-coarse",
            Industry,
            PreventAccess,
            "software: mask indices so out-of-bounds addresses are unrepresentable",
            None
        ),
        defense!(
            names::ADDRESS_MASKING_DATA_DEPENDENT,
            "mask-data",
            Industry,
            PreventAccess,
            "software: conditional masking against the actual bound (V8/Linux)",
            None
        ),
        defense!(
            names::SSBB,
            "ssbb",
            Industry,
            PreventAccess,
            "barrier: loads after it may not bypass stores before it",
            overlay![SsbDisable => true]
        ),
        defense!(
            names::SSBS,
            "ssbs",
            Industry,
            PreventAccess,
            "mode bit: loads never bypass stores with unresolved addresses",
            overlay![SsbDisable => true]
        ),
        defense!(
            names::RSB_STUFFING,
            "rsb-stuffing",
            Industry,
            ClearPredictions,
            "refill the return stack buffer with benign entries on switches",
            overlay![RsbStuffing => true]
        ),
        defense!(
            names::EAGER_FPU_SWITCH,
            "eager-fpu",
            Industry,
            PreventAccess,
            "save/restore FP registers eagerly on every context switch",
            overlay![LazyFpu => false]
        ),
        defense!(
            names::IN_SILICON_FIX,
            "silicon-fix",
            Industry,
            PreventAccess,
            "faulting accesses return zeros: no transient forwarding at all",
            overlay![
                TransientForwarding => false,
                MdsForwarding => false,
                L1tfForwarding => false,
            ]
        ),
        // ---- Academia (§V-B) ----
        defense!(
            names::CONTEXT_SENSITIVE_FENCING,
            "csf",
            Academia,
            PreventAccess,
            "hardware-injected micro-op fences between branches and loads",
            overlay![NoSpeculativeLoads => true]
        ),
        defense!(
            names::SABC,
            "sabc",
            Academia,
            PreventAccess,
            "software: inject data dependencies serializing branch and access",
            None
        ),
        defense!(
            names::EAGER_PERMISSION_CHECK,
            "eager-permcheck",
            Academia,
            PreventAccess,
            "complete the intra-instruction authorization before forwarding data",
            overlay![EagerPermissionCheck => true]
        ),
        defense!(
            names::NDA,
            "nda",
            Academia,
            PreventUse,
            "no forwarding of speculative load results to dependents",
            overlay![Nda => true]
        ),
        defense!(
            names::SPECSHIELD,
            "specshield",
            Academia,
            PreventUse,
            "shield speculative data from forwarding to covert-channel-capable ops",
            overlay![Nda => true]
        ),
        defense!(
            names::SPECTREGUARD,
            "spectreguard",
            Academia,
            PreventUse,
            "software-marked secrets; forwarding of marked data blocked while speculative",
            overlay![Nda => true]
        ),
        defense!(
            names::CONTEXT,
            "context",
            Academia,
            PreventUse,
            "taint secret memory; transient use of tainted data blocked",
            overlay![Nda => true]
        ),
        defense!(
            names::STT,
            "stt",
            Academia,
            PreventSend,
            "taint speculative data; block transmitters (loads/branches) on tainted operands",
            overlay![Stt => true]
        ),
        defense!(
            names::SPECSHIELD_ERP,
            "specshield-erp",
            Academia,
            PreventSend,
            "block loads whose address derives from speculative data",
            overlay![Stt => true]
        ),
        defense!(
            names::CONDITIONAL_SPECULATION,
            "cond-spec",
            Academia,
            PreventSend,
            "allow speculative cache hits, delay speculative misses",
            overlay![DelayOnMiss => true]
        ),
        defense!(
            names::EFFICIENT_INVISIBLE_SPECULATION,
            "eise",
            Academia,
            PreventSend,
            "selective delay of state-changing speculative loads",
            overlay![DelayOnMiss => true]
        ),
        defense!(
            names::INVISISPEC,
            "invisispec",
            Academia,
            PreventSend,
            "speculative loads fill a shadow buffer; the cache changes only at commit",
            overlay![InvisibleSpec => true]
        ),
        defense!(
            names::SAFESPEC,
            "safespec",
            Academia,
            PreventSend,
            "shadow structures for speculative state, discarded on squash",
            overlay![InvisibleSpec => true]
        ),
        defense!(
            names::CLEANUPSPEC,
            "cleanup-spec",
            Academia,
            PreventSend,
            "undo speculative cache modifications on squash",
            overlay![CleanupSpec => true]
        ),
        defense!(
            names::DAWG,
            "dawg",
            Academia,
            PreventSend,
            "partition cache ways between protection domains: no cross-domain hits/evictions",
            overlay![Dawg => true]
        ),
    ];
    REGISTRY
}

/// Looks up a registry defense by its canonical [`names`] constant.
#[must_use]
pub fn find(name: &str) -> Option<&'static Defense> {
    registry().iter().find(|d| d.name == name)
}

/// Looks up a registry defense by either its short [`Defense::token`]
/// (case-insensitive) or its full canonical name — the per-member
/// resolution rule of the stack grammar.
#[must_use]
pub fn resolve(name_or_token: &str) -> Option<&'static Defense> {
    registry()
        .iter()
        .find(|d| d.name == name_or_token || d.token.eq_ignore_ascii_case(name_or_token))
}

/// The defense catalog as an owned `Vec` (same list and order as
/// [`registry`]), for callers that want to extend or reorder the set.
#[must_use]
pub fn catalog() -> Vec<Defense> {
    registry().to_vec()
}

/// One row of Table II: an attack family, the vendor strategy name, and the
/// defenses implementing it.
#[derive(Debug, Clone)]
pub struct IndustryRow {
    /// The attack (family) being defended against.
    pub attack: &'static str,
    /// The vendor defense-strategy name used in Table II.
    pub strategy_name: &'static str,
    /// The defenses of that row.
    pub defenses: Vec<&'static str>,
}

/// Table II of the paper.
#[must_use]
pub fn industry_rows() -> Vec<IndustryRow> {
    vec![
        IndustryRow {
            attack: "Spectre",
            strategy_name: "Serialization",
            defenses: vec![names::LFENCE, names::MFENCE],
        },
        IndustryRow {
            attack: "Meltdown",
            strategy_name: "Kernel Isolation",
            defenses: vec![names::KPTI],
        },
        IndustryRow {
            attack: "Spectre variants requiring branch prediction (v1, v1.1, v1.2, v2)",
            strategy_name: "Prevent mis-training of branch prediction",
            defenses: vec![
                names::IBRS,
                names::STIBP,
                names::IBPB,
                names::BTB_INVALIDATION,
                names::RETPOLINE,
            ],
        },
        IndustryRow {
            attack: "Spectre boundary bypass (v1, v1.1, v1.2)",
            strategy_name: "Address masking",
            defenses: vec![
                names::ADDRESS_MASKING_COARSE,
                names::ADDRESS_MASKING_DATA_DEPENDENT,
            ],
        },
        IndustryRow {
            attack: "Spectre v4",
            strategy_name: "Serialize stores and loads",
            defenses: vec![names::SSBB, names::SSBS],
        },
        IndustryRow {
            attack: "Spectre RSB",
            strategy_name: "Prevent RSB underfill",
            defenses: vec![names::RSB_STUFFING],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_paper_lists() {
        let c = catalog();
        let names: Vec<&str> = c.iter().map(|d| d.name).collect();
        // Every Table II defense name appears in the catalog.
        for row in industry_rows() {
            for d in row.defenses {
                assert!(names.contains(&d), "Table II defense {d} missing");
            }
        }
        // Every §V-B academia defense is present.
        for d in [
            "Context-sensitive fencing",
            "Secure Automatic Bounds Checking",
            "NDA",
            "SpecShield",
            "SpectreGuard",
            "ConTExT",
            "STT",
            "Conditional Speculation",
            "Efficient Invisible Speculative Execution",
            "InvisiSpec",
            "SafeSpec",
            "CleanupSpec",
            "DAWG",
        ] {
            assert!(names.contains(&d), "academia defense {d} missing");
        }
    }

    #[test]
    fn every_defense_maps_to_a_strategy() {
        // The paper's claim: *all* current defenses fall under one of the
        // four strategies. The enum makes this total by construction; this
        // test documents the distribution is non-degenerate.
        let c = catalog();
        for s in Strategy::all() {
            assert!(
                c.iter().any(|d| d.strategy == s),
                "no defense under strategy {s}"
            );
        }
    }

    #[test]
    fn registry_and_catalog_are_the_same_list() {
        let reg = registry();
        let cat = catalog();
        assert_eq!(reg.len(), cat.len());
        for (r, c) in reg.iter().zip(&cat) {
            assert_eq!(r.name, c.name);
            assert_eq!(r.strategy, c.strategy);
            assert_eq!(r.origin, c.origin);
        }
    }

    #[test]
    fn find_resolves_every_registered_name() {
        for d in registry() {
            assert_eq!(find(d.name).expect("resolves").name, d.name);
        }
        assert!(find("Magic bullet").is_none());
    }

    #[test]
    fn tokens_are_unique_and_resolve() {
        for (i, d) in registry().iter().enumerate() {
            assert!(
                d.token
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "token '{}' is not lowercase-ascii-kebab",
                d.token
            );
            // Tokens must be unique (the stack grammar resolves by token)
            // and must not collide with another defense's full name.
            for other in &registry()[..i] {
                assert_ne!(d.token, other.token, "duplicate token");
                assert_ne!(d.token, other.name, "token shadows a name");
            }
            assert_eq!(resolve(d.token).expect("token resolves").name, d.name);
            assert_eq!(resolve(d.name).expect("name resolves").name, d.name);
            // Tokens are case-insensitive; names are not.
            assert_eq!(
                resolve(&d.token.to_ascii_uppercase())
                    .expect("resolves")
                    .name,
                d.name
            );
        }
        assert!(resolve("magic-bullet").is_none());
    }

    #[test]
    fn configure_produces_modified_config() {
        let base = UarchConfig::default();
        let kpti = catalog()
            .into_iter()
            .find(|d| d.name == "KAISER/KPTI")
            .unwrap();
        let cfg = kpti.configure(&base).unwrap();
        assert!(cfg.kpti);
        assert!(!base.kpti);
        let masking = catalog()
            .into_iter()
            .find(|d| d.name == "Address masking (coarse)")
            .unwrap();
        assert!(masking.configure(&base).is_none());
        assert!(!masking.is_modeled());
        assert!(masking.overlay().is_none());
    }

    #[test]
    fn overlays_record_the_exact_writes() {
        let base = UarchConfig::default();
        for d in registry() {
            let Some(overlay) = d.overlay() else { continue };
            assert!(!overlay.writes().is_empty(), "{} records nothing", d.name);
            // configure() and the recorded writes agree by construction —
            // this pins that the overlay actually changes the baseline.
            let cfg = d.configure(&base).unwrap();
            assert_ne!(cfg, base, "{} overlay is a no-op on the baseline", d.name);
            assert_eq!(
                overlay.diff(&base).len(),
                overlay.writes().len(),
                "{} writes values the baseline already has",
                d.name
            );
            assert!(overlay.diff(&cfg).is_empty());
        }
    }

    #[test]
    fn display_forms() {
        let d = catalog().into_iter().next().unwrap();
        let s = d.to_string();
        assert!(s.contains(d.name));
        assert!(Origin::Academia.to_string() == "academia");
    }
}
