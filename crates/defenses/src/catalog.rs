//! The defense catalog: Table II (industry) plus the §V-B academia
//! defenses, each mapped to one of the four strategies.

use crate::Strategy;
use std::fmt;
use uarch::UarchConfig;

/// Where a defense was proposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// Shipped or specified by CPU/OS vendors (Table II).
    Industry,
    /// Proposed in academic literature (§V-B).
    Academia,
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Origin::Industry => "industry",
            Origin::Academia => "academia",
        })
    }
}

/// One concrete defense.
#[derive(Debug, Clone, Copy)]
pub struct Defense {
    /// Canonical name, e.g. `"LFENCE"` or `"InvisiSpec"`.
    pub name: &'static str,
    /// Industry or academia.
    pub origin: Origin,
    /// The paper strategy the defense implements.
    pub strategy: Strategy,
    /// One-line mechanism description.
    pub mechanism: &'static str,
    /// How the defense is realized on the simulator, if it has a hardware
    /// model (`None` for purely software rewrites like address masking,
    /// which are demonstrated at the program level by the `analyzer`
    /// crate).
    configure: Option<fn(&mut UarchConfig)>,
}

impl Defense {
    /// Whether the defense has an executable hardware model.
    #[must_use]
    pub fn is_modeled(&self) -> bool {
        self.configure.is_some()
    }

    /// Produces the machine configuration with this defense enabled on top
    /// of `base`. Returns `None` for software-only defenses.
    #[must_use]
    pub fn configure(&self, base: &UarchConfig) -> Option<UarchConfig> {
        self.configure.map(|f| {
            let mut cfg = base.clone();
            f(&mut cfg);
            cfg
        })
    }
}

impl fmt::Display for Defense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} / {}]",
            self.name,
            self.origin,
            self.strategy.label()
        )
    }
}

/// Canonical defense-name constants — the single source for every string
/// that identifies a Table-II/§V-B defense, shared by the registry, the
/// bench binaries, and the campaign engine.
pub mod names {
    /// Intel/AMD load-serializing fence.
    pub const LFENCE: &str = "LFENCE";
    /// Memory-serializing fence.
    pub const MFENCE: &str = "MFENCE";
    /// Kernel page-table isolation.
    pub const KPTI: &str = "KAISER/KPTI";
    /// Indirect Branch Restricted Speculation.
    pub const IBRS: &str = "IBRS";
    /// Single Thread Indirect Branch Predictors.
    pub const STIBP: &str = "STIBP";
    /// Indirect Branch Prediction Barrier.
    pub const IBPB: &str = "IBPB";
    /// AMD BTB invalidation option.
    pub const BTB_INVALIDATION: &str = "BTB invalidation on context switch";
    /// Google's retpoline sequence.
    pub const RETPOLINE: &str = "Retpoline";
    /// Coarse address masking.
    pub const ADDRESS_MASKING_COARSE: &str = "Address masking (coarse)";
    /// Data-dependent address masking.
    pub const ADDRESS_MASKING_DATA_DEPENDENT: &str = "Address masking (data-dependent)";
    /// Speculative Store Bypass Barrier.
    pub const SSBB: &str = "SSBB";
    /// Speculative Store Bypass Safe mode bit.
    pub const SSBS: &str = "SSBS";
    /// RSB stuffing on context switches.
    pub const RSB_STUFFING: &str = "RSB stuffing";
    /// Eager FPU state switching.
    pub const EAGER_FPU_SWITCH: &str = "Eager FPU switch";
    /// Cascade Lake in-silicon fix.
    pub const IN_SILICON_FIX: &str = "In-silicon fix (Cascade Lake)";
    /// Context-sensitive fencing (micro-op injection).
    pub const CONTEXT_SENSITIVE_FENCING: &str = "Context-sensitive fencing";
    /// Secure Automatic Bounds Checking.
    pub const SABC: &str = "Secure Automatic Bounds Checking";
    /// Eager (pre-forwarding) permission checks.
    pub const EAGER_PERMISSION_CHECK: &str = "Eager permission check";
    /// Non-speculative Data Access.
    pub const NDA: &str = "NDA";
    /// SpecShield forwarding shield.
    pub const SPECSHIELD: &str = "SpecShield";
    /// SpectreGuard marked-secret protection.
    pub const SPECTREGUARD: &str = "SpectreGuard";
    /// ConTExT taint tracking.
    pub const CONTEXT: &str = "ConTExT";
    /// Speculative Taint Tracking.
    pub const STT: &str = "STT";
    /// SpecShieldERP+ address-derivation blocking.
    pub const SPECSHIELD_ERP: &str = "SpecShieldERP+";
    /// Conditional Speculation (delay speculative misses).
    pub const CONDITIONAL_SPECULATION: &str = "Conditional Speculation";
    /// Efficient Invisible Speculative Execution.
    pub const EFFICIENT_INVISIBLE_SPECULATION: &str = "Efficient Invisible Speculative Execution";
    /// InvisiSpec shadow-buffer loads.
    pub const INVISISPEC: &str = "InvisiSpec";
    /// SafeSpec shadow structures.
    pub const SAFESPEC: &str = "SafeSpec";
    /// CleanupSpec undo-on-squash.
    pub const CLEANUPSPEC: &str = "CleanupSpec";
    /// DAWG cache-way partitioning.
    pub const DAWG: &str = "DAWG";
}

macro_rules! defense {
    ($name:expr, $origin:ident, $strategy:ident, $mech:literal, |$cfg:ident| $body:expr) => {
        Defense {
            name: $name,
            origin: Origin::$origin,
            strategy: Strategy::$strategy,
            mechanism: $mech,
            configure: Some(|$cfg: &mut UarchConfig| $body),
        }
    };
    ($name:expr, $origin:ident, $strategy:ident, $mech:literal, software) => {
        Defense {
            name: $name,
            origin: Origin::$origin,
            strategy: Strategy::$strategy,
            mechanism: $mech,
            configure: None,
        }
    };
}

/// The full defense catalog as a `'static` registry: every Table II
/// industry defense and every §V-B academia defense, in the paper's order.
///
/// This is the canonical iteration surface for the campaign engine, the
/// bench binaries and the examples; a defense added here shows up in every
/// matrix at once.
#[must_use]
pub fn registry() -> &'static [Defense] {
    static REGISTRY: &[Defense] = &[
        // ---- Industry (Table II) ----
        defense!(
            names::LFENCE,
            Industry,
            PreventAccess,
            "serialize: no younger instruction executes before the fence retires",
            |c| c.no_speculative_loads = true
        ),
        defense!(
            names::MFENCE,
            Industry,
            PreventAccess,
            "serialize memory operations across the fence",
            |c| c.no_speculative_loads = true
        ),
        defense!(
            names::KPTI,
            Industry,
            PreventAccess,
            "unmap kernel pages in user mode: no PTE, no transient data path",
            |c| c.kpti = true
        ),
        defense!(
            names::IBRS,
            Industry,
            ClearPredictions,
            "restrict indirect-branch speculation across privilege modes",
            |c| c.flush_predictors_on_switch = true
        ),
        defense!(
            names::STIBP,
            Industry,
            ClearPredictions,
            "do not share indirect-branch predictions between sibling threads",
            |c| c.flush_predictors_on_switch = true
        ),
        defense!(
            names::IBPB,
            Industry,
            ClearPredictions,
            "barrier: flush the branch target buffer on context switch",
            |c| c.flush_predictors_on_switch = true
        ),
        defense!(
            names::BTB_INVALIDATION,
            Industry,
            ClearPredictions,
            "AMD option: invalidate predictor state when switching contexts",
            |c| c.flush_predictors_on_switch = true
        ),
        defense!(
            names::RETPOLINE,
            Industry,
            ClearPredictions,
            "replace indirect branches with return sequences that never use the BTB",
            |c| c.no_indirect_prediction = true
        ),
        defense!(
            names::ADDRESS_MASKING_COARSE,
            Industry,
            PreventAccess,
            "software: mask indices so out-of-bounds addresses are unrepresentable",
            software
        ),
        defense!(
            names::ADDRESS_MASKING_DATA_DEPENDENT,
            Industry,
            PreventAccess,
            "software: conditional masking against the actual bound (V8/Linux)",
            software
        ),
        defense!(
            names::SSBB,
            Industry,
            PreventAccess,
            "barrier: loads after it may not bypass stores before it",
            |c| c.ssb_disable = true
        ),
        defense!(
            names::SSBS,
            Industry,
            PreventAccess,
            "mode bit: loads never bypass stores with unresolved addresses",
            |c| c.ssb_disable = true
        ),
        defense!(
            names::RSB_STUFFING,
            Industry,
            ClearPredictions,
            "refill the return stack buffer with benign entries on switches",
            |c| c.rsb_stuffing = true
        ),
        defense!(
            names::EAGER_FPU_SWITCH,
            Industry,
            PreventAccess,
            "save/restore FP registers eagerly on every context switch",
            |c| c.lazy_fpu = false
        ),
        defense!(
            names::IN_SILICON_FIX,
            Industry,
            PreventAccess,
            "faulting accesses return zeros: no transient forwarding at all",
            |c| {
                c.transient_forwarding = false;
                c.mds_forwarding = false;
                c.l1tf_forwarding = false;
            }
        ),
        // ---- Academia (§V-B) ----
        defense!(
            names::CONTEXT_SENSITIVE_FENCING,
            Academia,
            PreventAccess,
            "hardware-injected micro-op fences between branches and loads",
            |c| c.no_speculative_loads = true
        ),
        defense!(
            names::SABC,
            Academia,
            PreventAccess,
            "software: inject data dependencies serializing branch and access",
            software
        ),
        defense!(
            names::EAGER_PERMISSION_CHECK,
            Academia,
            PreventAccess,
            "complete the intra-instruction authorization before forwarding data",
            |c| c.eager_permission_check = true
        ),
        defense!(
            names::NDA,
            Academia,
            PreventUse,
            "no forwarding of speculative load results to dependents",
            |c| c.nda = true
        ),
        defense!(
            names::SPECSHIELD,
            Academia,
            PreventUse,
            "shield speculative data from forwarding to covert-channel-capable ops",
            |c| c.nda = true
        ),
        defense!(
            names::SPECTREGUARD,
            Academia,
            PreventUse,
            "software-marked secrets; forwarding of marked data blocked while speculative",
            |c| c.nda = true
        ),
        defense!(
            names::CONTEXT,
            Academia,
            PreventUse,
            "taint secret memory; transient use of tainted data blocked",
            |c| c.nda = true
        ),
        defense!(
            names::STT,
            Academia,
            PreventSend,
            "taint speculative data; block transmitters (loads/branches) on tainted operands",
            |c| c.stt = true
        ),
        defense!(
            names::SPECSHIELD_ERP,
            Academia,
            PreventSend,
            "block loads whose address derives from speculative data",
            |c| c.stt = true
        ),
        defense!(
            names::CONDITIONAL_SPECULATION,
            Academia,
            PreventSend,
            "allow speculative cache hits, delay speculative misses",
            |c| c.delay_on_miss = true
        ),
        defense!(
            names::EFFICIENT_INVISIBLE_SPECULATION,
            Academia,
            PreventSend,
            "selective delay of state-changing speculative loads",
            |c| c.delay_on_miss = true
        ),
        defense!(
            names::INVISISPEC,
            Academia,
            PreventSend,
            "speculative loads fill a shadow buffer; the cache changes only at commit",
            |c| c.invisible_spec = true
        ),
        defense!(
            names::SAFESPEC,
            Academia,
            PreventSend,
            "shadow structures for speculative state, discarded on squash",
            |c| c.invisible_spec = true
        ),
        defense!(
            names::CLEANUPSPEC,
            Academia,
            PreventSend,
            "undo speculative cache modifications on squash",
            |c| c.cleanup_spec = true
        ),
        defense!(
            names::DAWG,
            Academia,
            PreventSend,
            "partition cache ways between protection domains: no cross-domain hits/evictions",
            |c| c.dawg = true
        ),
    ];
    REGISTRY
}

/// Looks up a registry defense by its canonical [`names`] constant.
#[must_use]
pub fn find(name: &str) -> Option<&'static Defense> {
    registry().iter().find(|d| d.name == name)
}

/// The defense catalog as an owned `Vec` (same list and order as
/// [`registry`]), for callers that want to extend or reorder the set.
#[must_use]
pub fn catalog() -> Vec<Defense> {
    registry().to_vec()
}

/// One row of Table II: an attack family, the vendor strategy name, and the
/// defenses implementing it.
#[derive(Debug, Clone)]
pub struct IndustryRow {
    /// The attack (family) being defended against.
    pub attack: &'static str,
    /// The vendor defense-strategy name used in Table II.
    pub strategy_name: &'static str,
    /// The defenses of that row.
    pub defenses: Vec<&'static str>,
}

/// Table II of the paper.
#[must_use]
pub fn industry_rows() -> Vec<IndustryRow> {
    vec![
        IndustryRow {
            attack: "Spectre",
            strategy_name: "Serialization",
            defenses: vec![names::LFENCE, names::MFENCE],
        },
        IndustryRow {
            attack: "Meltdown",
            strategy_name: "Kernel Isolation",
            defenses: vec![names::KPTI],
        },
        IndustryRow {
            attack: "Spectre variants requiring branch prediction (v1, v1.1, v1.2, v2)",
            strategy_name: "Prevent mis-training of branch prediction",
            defenses: vec![
                names::IBRS,
                names::STIBP,
                names::IBPB,
                names::BTB_INVALIDATION,
                names::RETPOLINE,
            ],
        },
        IndustryRow {
            attack: "Spectre boundary bypass (v1, v1.1, v1.2)",
            strategy_name: "Address masking",
            defenses: vec![
                names::ADDRESS_MASKING_COARSE,
                names::ADDRESS_MASKING_DATA_DEPENDENT,
            ],
        },
        IndustryRow {
            attack: "Spectre v4",
            strategy_name: "Serialize stores and loads",
            defenses: vec![names::SSBB, names::SSBS],
        },
        IndustryRow {
            attack: "Spectre RSB",
            strategy_name: "Prevent RSB underfill",
            defenses: vec![names::RSB_STUFFING],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_paper_lists() {
        let c = catalog();
        let names: Vec<&str> = c.iter().map(|d| d.name).collect();
        // Every Table II defense name appears in the catalog.
        for row in industry_rows() {
            for d in row.defenses {
                assert!(names.contains(&d), "Table II defense {d} missing");
            }
        }
        // Every §V-B academia defense is present.
        for d in [
            "Context-sensitive fencing",
            "Secure Automatic Bounds Checking",
            "NDA",
            "SpecShield",
            "SpectreGuard",
            "ConTExT",
            "STT",
            "Conditional Speculation",
            "Efficient Invisible Speculative Execution",
            "InvisiSpec",
            "SafeSpec",
            "CleanupSpec",
            "DAWG",
        ] {
            assert!(names.contains(&d), "academia defense {d} missing");
        }
    }

    #[test]
    fn every_defense_maps_to_a_strategy() {
        // The paper's claim: *all* current defenses fall under one of the
        // four strategies. The enum makes this total by construction; this
        // test documents the distribution is non-degenerate.
        let c = catalog();
        for s in Strategy::all() {
            assert!(
                c.iter().any(|d| d.strategy == s),
                "no defense under strategy {s}"
            );
        }
    }

    #[test]
    fn registry_and_catalog_are_the_same_list() {
        let reg = registry();
        let cat = catalog();
        assert_eq!(reg.len(), cat.len());
        for (r, c) in reg.iter().zip(&cat) {
            assert_eq!(r.name, c.name);
            assert_eq!(r.strategy, c.strategy);
            assert_eq!(r.origin, c.origin);
        }
    }

    #[test]
    fn find_resolves_every_registered_name() {
        for d in registry() {
            assert_eq!(find(d.name).expect("resolves").name, d.name);
        }
        assert!(find("Magic bullet").is_none());
    }

    #[test]
    fn configure_produces_modified_config() {
        let base = UarchConfig::default();
        let kpti = catalog()
            .into_iter()
            .find(|d| d.name == "KAISER/KPTI")
            .unwrap();
        let cfg = kpti.configure(&base).unwrap();
        assert!(cfg.kpti);
        assert!(!base.kpti);
        let masking = catalog()
            .into_iter()
            .find(|d| d.name == "Address masking (coarse)")
            .unwrap();
        assert!(masking.configure(&base).is_none());
        assert!(!masking.is_modeled());
    }

    #[test]
    fn display_forms() {
        let d = catalog().into_iter().next().unwrap();
        let s = d.to_string();
        assert!(s.contains(d.name));
        assert!(Origin::Academia.to_string() == "academia");
    }
}
