//! The defense catalog: Table II (industry) plus the §V-B academia
//! defenses, each mapped to one of the four strategies.

use crate::Strategy;
use std::fmt;
use uarch::UarchConfig;

/// Where a defense was proposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// Shipped or specified by CPU/OS vendors (Table II).
    Industry,
    /// Proposed in academic literature (§V-B).
    Academia,
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Origin::Industry => "industry",
            Origin::Academia => "academia",
        })
    }
}

/// One concrete defense.
#[derive(Debug, Clone, Copy)]
pub struct Defense {
    /// Canonical name, e.g. `"LFENCE"` or `"InvisiSpec"`.
    pub name: &'static str,
    /// Industry or academia.
    pub origin: Origin,
    /// The paper strategy the defense implements.
    pub strategy: Strategy,
    /// One-line mechanism description.
    pub mechanism: &'static str,
    /// How the defense is realized on the simulator, if it has a hardware
    /// model (`None` for purely software rewrites like address masking,
    /// which are demonstrated at the program level by the `analyzer`
    /// crate).
    configure: Option<fn(&mut UarchConfig)>,
}

impl Defense {
    /// Whether the defense has an executable hardware model.
    #[must_use]
    pub fn is_modeled(&self) -> bool {
        self.configure.is_some()
    }

    /// Produces the machine configuration with this defense enabled on top
    /// of `base`. Returns `None` for software-only defenses.
    #[must_use]
    pub fn configure(&self, base: &UarchConfig) -> Option<UarchConfig> {
        self.configure.map(|f| {
            let mut cfg = base.clone();
            f(&mut cfg);
            cfg
        })
    }
}

impl fmt::Display for Defense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{} / {}]", self.name, self.origin, self.strategy.label())
    }
}

macro_rules! defense {
    ($name:literal, $origin:ident, $strategy:ident, $mech:literal, |$cfg:ident| $body:expr) => {
        Defense {
            name: $name,
            origin: Origin::$origin,
            strategy: Strategy::$strategy,
            mechanism: $mech,
            configure: Some(|$cfg: &mut UarchConfig| $body),
        }
    };
    ($name:literal, $origin:ident, $strategy:ident, $mech:literal, software) => {
        Defense {
            name: $name,
            origin: Origin::$origin,
            strategy: Strategy::$strategy,
            mechanism: $mech,
            configure: None,
        }
    };
}

/// The full defense catalog: every Table II industry defense and every
/// §V-B academia defense, in the paper's order.
#[must_use]
pub fn catalog() -> Vec<Defense> {
    vec![
        // ---- Industry (Table II) ----
        defense!("LFENCE", Industry, PreventAccess,
            "serialize: no younger instruction executes before the fence retires",
            |c| c.no_speculative_loads = true),
        defense!("MFENCE", Industry, PreventAccess,
            "serialize memory operations across the fence",
            |c| c.no_speculative_loads = true),
        defense!("KAISER/KPTI", Industry, PreventAccess,
            "unmap kernel pages in user mode: no PTE, no transient data path",
            |c| c.kpti = true),
        defense!("IBRS", Industry, ClearPredictions,
            "restrict indirect-branch speculation across privilege modes",
            |c| c.flush_predictors_on_switch = true),
        defense!("STIBP", Industry, ClearPredictions,
            "do not share indirect-branch predictions between sibling threads",
            |c| c.flush_predictors_on_switch = true),
        defense!("IBPB", Industry, ClearPredictions,
            "barrier: flush the branch target buffer on context switch",
            |c| c.flush_predictors_on_switch = true),
        defense!("BTB invalidation on context switch", Industry, ClearPredictions,
            "AMD option: invalidate predictor state when switching contexts",
            |c| c.flush_predictors_on_switch = true),
        defense!("Retpoline", Industry, ClearPredictions,
            "replace indirect branches with return sequences that never use the BTB",
            |c| c.no_indirect_prediction = true),
        defense!("Address masking (coarse)", Industry, PreventAccess,
            "software: mask indices so out-of-bounds addresses are unrepresentable",
            software),
        defense!("Address masking (data-dependent)", Industry, PreventAccess,
            "software: conditional masking against the actual bound (V8/Linux)",
            software),
        defense!("SSBB", Industry, PreventAccess,
            "barrier: loads after it may not bypass stores before it",
            |c| c.ssb_disable = true),
        defense!("SSBS", Industry, PreventAccess,
            "mode bit: loads never bypass stores with unresolved addresses",
            |c| c.ssb_disable = true),
        defense!("RSB stuffing", Industry, ClearPredictions,
            "refill the return stack buffer with benign entries on switches",
            |c| c.rsb_stuffing = true),
        defense!("Eager FPU switch", Industry, PreventAccess,
            "save/restore FP registers eagerly on every context switch",
            |c| c.lazy_fpu = false),
        defense!("In-silicon fix (Cascade Lake)", Industry, PreventAccess,
            "faulting accesses return zeros: no transient forwarding at all",
            |c| {
                c.transient_forwarding = false;
                c.mds_forwarding = false;
                c.l1tf_forwarding = false;
            }),
        // ---- Academia (§V-B) ----
        defense!("Context-sensitive fencing", Academia, PreventAccess,
            "hardware-injected micro-op fences between branches and loads",
            |c| c.no_speculative_loads = true),
        defense!("Secure Automatic Bounds Checking", Academia, PreventAccess,
            "software: inject data dependencies serializing branch and access",
            software),
        defense!("Eager permission check", Academia, PreventAccess,
            "complete the intra-instruction authorization before forwarding data",
            |c| c.eager_permission_check = true),
        defense!("NDA", Academia, PreventUse,
            "no forwarding of speculative load results to dependents",
            |c| c.nda = true),
        defense!("SpecShield", Academia, PreventUse,
            "shield speculative data from forwarding to covert-channel-capable ops",
            |c| c.nda = true),
        defense!("SpectreGuard", Academia, PreventUse,
            "software-marked secrets; forwarding of marked data blocked while speculative",
            |c| c.nda = true),
        defense!("ConTExT", Academia, PreventUse,
            "taint secret memory; transient use of tainted data blocked",
            |c| c.nda = true),
        defense!("STT", Academia, PreventSend,
            "taint speculative data; block transmitters (loads/branches) on tainted operands",
            |c| c.stt = true),
        defense!("SpecShieldERP+", Academia, PreventSend,
            "block loads whose address derives from speculative data",
            |c| c.stt = true),
        defense!("Conditional Speculation", Academia, PreventSend,
            "allow speculative cache hits, delay speculative misses",
            |c| c.delay_on_miss = true),
        defense!("Efficient Invisible Speculative Execution", Academia, PreventSend,
            "selective delay of state-changing speculative loads",
            |c| c.delay_on_miss = true),
        defense!("InvisiSpec", Academia, PreventSend,
            "speculative loads fill a shadow buffer; the cache changes only at commit",
            |c| c.invisible_spec = true),
        defense!("SafeSpec", Academia, PreventSend,
            "shadow structures for speculative state, discarded on squash",
            |c| c.invisible_spec = true),
        defense!("CleanupSpec", Academia, PreventSend,
            "undo speculative cache modifications on squash",
            |c| c.cleanup_spec = true),
        defense!("DAWG", Academia, PreventSend,
            "partition cache ways between protection domains: no cross-domain hits/evictions",
            |c| c.dawg = true),
    ]
}

/// One row of Table II: an attack family, the vendor strategy name, and the
/// defenses implementing it.
#[derive(Debug, Clone)]
pub struct IndustryRow {
    /// The attack (family) being defended against.
    pub attack: &'static str,
    /// The vendor defense-strategy name used in Table II.
    pub strategy_name: &'static str,
    /// The defenses of that row.
    pub defenses: Vec<&'static str>,
}

/// Table II of the paper.
#[must_use]
pub fn industry_rows() -> Vec<IndustryRow> {
    vec![
        IndustryRow {
            attack: "Spectre",
            strategy_name: "Serialization",
            defenses: vec!["LFENCE", "MFENCE"],
        },
        IndustryRow {
            attack: "Meltdown",
            strategy_name: "Kernel Isolation",
            defenses: vec!["KAISER/KPTI"],
        },
        IndustryRow {
            attack: "Spectre variants requiring branch prediction (v1, v1.1, v1.2, v2)",
            strategy_name: "Prevent mis-training of branch prediction",
            defenses: vec![
                "IBRS",
                "STIBP",
                "IBPB",
                "BTB invalidation on context switch",
                "Retpoline",
            ],
        },
        IndustryRow {
            attack: "Spectre boundary bypass (v1, v1.1, v1.2)",
            strategy_name: "Address masking",
            defenses: vec!["Address masking (coarse)", "Address masking (data-dependent)"],
        },
        IndustryRow {
            attack: "Spectre v4",
            strategy_name: "Serialize stores and loads",
            defenses: vec!["SSBB", "SSBS"],
        },
        IndustryRow {
            attack: "Spectre RSB",
            strategy_name: "Prevent RSB underfill",
            defenses: vec!["RSB stuffing"],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_paper_lists() {
        let c = catalog();
        let names: Vec<&str> = c.iter().map(|d| d.name).collect();
        // Every Table II defense name appears in the catalog.
        for row in industry_rows() {
            for d in row.defenses {
                assert!(names.contains(&d), "Table II defense {d} missing");
            }
        }
        // Every §V-B academia defense is present.
        for d in [
            "Context-sensitive fencing",
            "Secure Automatic Bounds Checking",
            "NDA",
            "SpecShield",
            "SpectreGuard",
            "ConTExT",
            "STT",
            "Conditional Speculation",
            "Efficient Invisible Speculative Execution",
            "InvisiSpec",
            "SafeSpec",
            "CleanupSpec",
            "DAWG",
        ] {
            assert!(names.contains(&d), "academia defense {d} missing");
        }
    }

    #[test]
    fn every_defense_maps_to_a_strategy() {
        // The paper's claim: *all* current defenses fall under one of the
        // four strategies. The enum makes this total by construction; this
        // test documents the distribution is non-degenerate.
        let c = catalog();
        for s in Strategy::all() {
            assert!(
                c.iter().any(|d| d.strategy == s),
                "no defense under strategy {s}"
            );
        }
    }

    #[test]
    fn configure_produces_modified_config() {
        let base = UarchConfig::default();
        let kpti = catalog().into_iter().find(|d| d.name == "KAISER/KPTI").unwrap();
        let cfg = kpti.configure(&base).unwrap();
        assert!(cfg.kpti);
        assert!(!base.kpti);
        let masking = catalog()
            .into_iter()
            .find(|d| d.name == "Address masking (coarse)")
            .unwrap();
        assert!(masking.configure(&base).is_none());
        assert!(!masking.is_modeled());
    }

    #[test]
    fn display_forms() {
        let d = catalog().into_iter().next().unwrap();
        let s = d.to_string();
        assert!(s.contains(d.name));
        assert!(Origin::Academia.to_string() == "academia");
    }
}
