//! # `defenses` — defense strategies and the defense catalog
//!
//! Implements Section V-B of "New Models for Understanding and Reasoning
//! about Speculative Execution Attacks" (HPCA 2021):
//!
//! * the four **defense strategies** of Figure 8 ([`Strategy`]) — prevent
//!   *access* / *use* / *send* before authorization, and *clear
//!   predictions*;
//! * a [`Defense`] catalog covering every industry defense of Table II and
//!   every academic defense discussed in §V-B, each mapped to its strategy;
//! * graph-level application ([`patch_strategy`]): inserting the
//!   missing security-dependency edge the strategy corresponds to, so
//!   Theorem 1 can *prove* the race is gone;
//! * machine-level application ([`Defense::configure`]): the corresponding
//!   [`uarch`] configuration knob, so the very same defense can be *tested*
//!   against the executable attacks of the [`attacks`] crate.
//!
//! ```
//! use defenses::{catalog, Strategy};
//! let lfence = catalog().into_iter().find(|d| d.name == "LFENCE").unwrap();
//! assert_eq!(lfence.strategy, Strategy::PreventAccess);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod apply;
mod catalog;
pub mod cover;
mod overlay;
mod session;
mod stack;
mod verify;

pub use apply::{patch_strategy, PatchError};
pub use catalog::{
    catalog, find, industry_rows, names, registry, resolve, Defense, IndustryRow, Origin,
};
pub use overlay::{KnobWrite, Overlay, OverlayKnob};
pub use session::PatchSession;
pub use stack::{presets, DefenseStack, StackError};
pub use verify::{verify, verify_matrix, verify_stack, verify_stack_warm, Verdict};

use std::fmt;

/// The four defense strategies of Figure 8 (and Figure 4's ①–④ arrows).
///
/// Each strategy is an *edge-insertion point*: which protected node
/// receives the new security dependency from the authorization node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// ① Prevent **access** before authorization: serialize the
    /// authorization and the secret access (fences, eager permission
    /// checks, KPTI removing the data path entirely).
    PreventAccess,
    /// ② Prevent data **use** before authorization: the secret may be
    /// fetched but not forwarded to dependents (NDA, SpecShield,
    /// SpectreGuard, ConTExT).
    PreventUse,
    /// ③ Prevent **send** before authorization: the micro-architectural
    /// state change that exfiltrates the secret is blocked, hidden or
    /// undone (STT, delay-on-miss, InvisiSpec/SafeSpec, CleanupSpec, DAWG).
    PreventSend,
    /// ④ **Clear predictions**: predictor state does not survive context
    /// switches, so cross-context mis-training is impossible (IBPB, STIBP,
    /// RSB stuffing, retpoline's prediction avoidance).
    ClearPredictions,
}

impl Strategy {
    /// The paper's circled-number label for the strategy.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Strategy::PreventAccess => "①",
            Strategy::PreventUse => "②",
            Strategy::PreventSend => "③",
            Strategy::ClearPredictions => "④",
        }
    }

    /// All four strategies, in the paper's order.
    #[must_use]
    pub fn all() -> [Strategy; 4] {
        [
            Strategy::PreventAccess,
            Strategy::PreventUse,
            Strategy::PreventSend,
            Strategy::ClearPredictions,
        ]
    }

    /// Stable machine-readable token, used in campaign CSV/JSON artifacts
    /// and joined with `+` for multi-strategy defense stacks.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Strategy::PreventAccess => "prevent_access",
            Strategy::PreventUse => "prevent_use",
            Strategy::PreventSend => "prevent_send",
            Strategy::ClearPredictions => "clear_predictions",
        }
    }

    /// The [`Strategy`] for a [`Strategy::token`] string.
    #[must_use]
    pub fn from_token(token: &str) -> Option<Strategy> {
        Self::all().into_iter().find(|s| s.token() == token)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Strategy::PreventAccess => "prevent access before authorization",
            Strategy::PreventUse => "prevent data usage before authorization",
            Strategy::PreventSend => "prevent send before authorization",
            Strategy::ClearPredictions => "clearing predictions",
        };
        write!(f, "{} {}", self.label(), s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_labels_and_display() {
        assert_eq!(Strategy::PreventAccess.label(), "①");
        assert_eq!(Strategy::ClearPredictions.label(), "④");
        assert!(Strategy::PreventUse.to_string().contains("usage"));
        assert_eq!(Strategy::all().len(), 4);
    }
}
