//! Minimal sufficient stacks: which (cheapest) combination of catalog
//! defenses blocks *every* attack in a set?
//!
//! This is the paper's headline question made executable. §V-B warns that
//! no single defense blocks every attack; this module searches the defense
//! catalog for the **smallest stack that does** — greedily first, then
//! exhaustively up to the greedy size, so the reported minimum is a proved
//! minimum over the candidate set, not a heuristic. Every candidate stack
//! is *verified by simulation* (the folded configuration is run against
//! every attack), never assumed from the union of its members' singleton
//! verdicts — stacking is not guaranteed to be additive.
//!
//! The search deduplicates candidates by [`Overlay`](crate::Overlay)
//! fingerprint (LFENCE and MFENCE are the same machine, so only one
//! participates), and reports attacks that **no** candidate blocks — over
//! the industry subset of the catalog that set is non-empty, which is
//! exactly the paper's point.
//!
//! All graph-level work — the false-sense checks of [`audit_stack`] /
//! [`audit_stacks`] and the per-candidate strategy check inside the
//! exhaustive search — runs over shared per-attack
//! [`PatchSession`]s: each attack's graph is built and
//! indexed once, and every candidate stack is applied and rolled back
//! incrementally against it.
//!
//! ```no_run
//! use defenses::cover;
//! use uarch::UarchConfig;
//!
//! let report = cover::minimal_cover(
//!     attacks::registry(),
//!     defenses::registry(),
//!     &UarchConfig::default(),
//! ).unwrap();
//! let minimal = report.minimal.expect("the full catalog covers everything");
//! println!("Table IV: {} ({} member(s))", minimal, minimal.members().len());
//! ```

use crate::{verify_stack, Defense, DefenseStack, PatchSession, Verdict};
use attacks::{Attack, AttackError};
use std::fmt;
use uarch::UarchConfig;

/// Lazily created per-attack [`PatchSession`]s, shared across every
/// candidate stack of a search or audit: each attack's graph is built and
/// indexed at most **once**, and each candidate's strategy edges are
/// applied and rolled back incrementally — instead of a graph clone plus
/// a full closure rebuild per (candidate, attack) pair.
struct SessionPool<'a> {
    attacks: &'a [&'static dyn Attack],
    slots: Vec<Option<PatchSession>>,
}

impl<'a> SessionPool<'a> {
    fn new(attacks: &'a [&'static dyn Attack]) -> Self {
        SessionPool {
            attacks,
            slots: attacks.iter().map(|_| None).collect(),
        }
    }

    fn get(&mut self, i: usize) -> &mut PatchSession {
        self.slots[i].get_or_insert_with(|| PatchSession::new(self.attacks[i]))
    }

    /// Whether `stack`'s member strategies are graph-sufficient
    /// (`Some(true)`) for **every** attack in the pool.
    fn sufficient_for_all(&mut self, stack: &DefenseStack) -> Result<bool, AttackError> {
        for i in 0..self.attacks.len() {
            if self.get(i).graph_sufficient(stack)? != Some(true) {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// How many attacks one candidate defense blocks on its own.
#[derive(Debug, Clone)]
pub struct SingletonCover {
    /// Defense name.
    pub defense: &'static str,
    /// Names of the attacks it blocks (machine level).
    pub blocks: Vec<&'static str>,
}

/// The result of a minimal-stack search over one attack set and one
/// candidate list.
#[derive(Debug, Clone)]
pub struct CoverReport {
    /// The attack names the search had to cover, in registry order.
    pub attacks: Vec<&'static str>,
    /// Per *modeled* candidate: what it blocks alone (software-only
    /// candidates cannot participate in a machine-level cover).
    pub singletons: Vec<SingletonCover>,
    /// Attacks that **no** candidate blocks — when non-empty, no stack
    /// over these candidates is sufficient and [`minimal`](Self::minimal)
    /// is `None`.
    pub uncovered: Vec<&'static str>,
    /// The greedy cover (largest-gain-first), when full coverage is
    /// possible. An upper bound on the minimum size.
    pub greedy: Option<DefenseStack>,
    /// The smallest sufficient stack: exhaustive search over deduplicated
    /// candidates for every size below the greedy bound, each candidate
    /// verified by simulation.
    pub minimal: Option<DefenseStack>,
    /// Stacks whose folded configuration was actually simulated against
    /// the full attack set during the search.
    pub stacks_verified: usize,
    /// Candidate stacks from the exhaustive search whose member
    /// *strategies* are graph-sufficient for every attack (Theorem 1 says
    /// the bundle closes every leak path) but whose deployed mechanisms
    /// still leaked under simulation — the §V-B "false sense of security"
    /// at search granularity. Checked via per-attack [`PatchSession`]s,
    /// so the exponential search pays incremental patch/rollback per
    /// candidate, never a rebuild.
    pub false_sense_stacks: Vec<String>,
}

impl fmt::Display for CoverReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.minimal {
            Some(stack) => write!(
                f,
                "minimal sufficient stack over {} attack(s): {} ({} member(s), {} stack(s) verified)",
                self.attacks.len(),
                stack,
                stack.members().len(),
                self.stacks_verified
            ),
            None if !self.uncovered.is_empty() => write!(
                f,
                "no sufficient stack: {} of {} attack(s) blocked by no candidate ({})",
                self.uncovered.len(),
                self.attacks.len(),
                self.uncovered.join(", ")
            ),
            None => write!(
                f,
                "no sufficient stack found over {} attack(s) ({} stack(s) verified)",
                self.attacks.len(),
                self.stacks_verified
            ),
        }
    }
}

/// One stack audited against an attack set at both levels — the
/// stack-shaped §V-B "false sense of security" report.
#[derive(Debug, Clone)]
pub struct StackAudit {
    /// The audited stack.
    pub stack: DefenseStack,
    /// Attacks the deployed stack blocks (machine level).
    pub blocked: Vec<&'static str>,
    /// Attacks that still leak under the deployed stack.
    pub leaked: Vec<&'static str>,
    /// The subset of [`leaked`](Self::leaked) where the stack's
    /// *strategies* would close the leak path (Theorem 1 says sufficient)
    /// but the deployed mechanisms do not — a false sense of security at
    /// bundle granularity.
    pub false_sense: Vec<&'static str>,
}

impl StackAudit {
    /// Whether the stack blocks the entire attack set.
    #[must_use]
    pub fn is_sufficient(&self) -> bool {
        self.leaked.is_empty()
    }
}

impl fmt::Display for StackAudit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: blocks {}/{}",
            self.stack,
            self.blocked.len(),
            self.blocked.len() + self.leaked.len()
        )?;
        if !self.leaked.is_empty() {
            write!(f, "; leaks: {}", self.leaked.join(", "))?;
        }
        if !self.false_sense.is_empty() {
            write!(
                f,
                "  <-- false sense of security vs {}",
                self.false_sense.join(", ")
            )?;
        }
        Ok(())
    }
}

/// Audits one stack against every attack: machine verdict per attack plus
/// the graph-level sufficiency check for the leaking ones. Auditing
/// several stacks against one attack set? [`audit_stacks`] shares the
/// per-attack graph sessions across all of them.
///
/// # Errors
///
/// Propagates [`AttackError`] from any simulation.
pub fn audit_stack(
    stack: &DefenseStack,
    attacks_list: &[&'static dyn Attack],
    base: &UarchConfig,
) -> Result<StackAudit, AttackError> {
    audit_with(
        stack,
        attacks_list,
        &mut SessionPool::new(attacks_list),
        base,
    )
}

/// Audits every stack against every attack — [`audit_stack`] in bulk,
/// over one shared [`PatchSession`] pool: each attack's graph is built
/// and indexed once, and every (stack, leaking attack) sufficiency check
/// is an incremental patch/rollback against it.
///
/// # Errors
///
/// Propagates [`AttackError`] from any simulation.
pub fn audit_stacks(
    stacks: &[DefenseStack],
    attacks_list: &[&'static dyn Attack],
    base: &UarchConfig,
) -> Result<Vec<StackAudit>, AttackError> {
    let mut sessions = SessionPool::new(attacks_list);
    stacks
        .iter()
        .map(|stack| audit_with(stack, attacks_list, &mut sessions, base))
        .collect()
}

fn audit_with(
    stack: &DefenseStack,
    attacks_list: &[&'static dyn Attack],
    sessions: &mut SessionPool<'_>,
    base: &UarchConfig,
) -> Result<StackAudit, AttackError> {
    let mut blocked = Vec::new();
    let mut leaked = Vec::new();
    let mut false_sense = Vec::new();
    for (i, attack) in attacks_list.iter().enumerate() {
        let name = attack.info().name;
        match verify_stack(stack, *attack, base)? {
            Verdict::Blocked => blocked.push(name),
            Verdict::GraphOnly => {}
            Verdict::Leaked => {
                leaked.push(name);
                if sessions.get(i).graph_sufficient(stack)? == Some(true) {
                    false_sense.push(name);
                }
            }
        }
    }
    Ok(StackAudit {
        stack: stack.clone(),
        blocked,
        leaked,
        false_sense,
    })
}

/// The industry defenses a deployment would actually enable everywhere:
/// Table II minus ubiquitous fencing (LFENCE/MFENCE serialize *every*
/// load — "sufficient" by brute force, ruled out by the paper's overhead
/// discussion). This is the canonical candidate set for the practical
/// Table-IV searches; the `table4` binary and the tests share it so the
/// printed claim and the proof cannot drift.
#[must_use]
pub fn practical_industry() -> Vec<Defense> {
    crate::registry()
        .iter()
        .filter(|d| {
            d.origin == crate::Origin::Industry
                && d.name != crate::names::LFENCE
                && d.name != crate::names::MFENCE
        })
        .copied()
        .collect()
}

/// Bit mask over the attack list: bit *i* set ⇔ attack *i* blocked.
type AttackMask = u64;

/// Searches for the smallest stack over `candidates` that blocks every
/// attack in `attacks_list` on a machine derived from `base`.
///
/// Strategy: per-candidate singleton verdicts establish what each defense
/// blocks alone; candidates are deduplicated by overlay fingerprint; a
/// greedy cover bounds the stack size; then every candidate combination of
/// each smaller size whose singleton union covers the attack set is
/// **verified by simulation** (smallest size first, catalog order within a
/// size), so the returned stack is a true minimum over the candidate set
/// and is proved by execution, not by union arithmetic.
///
/// # Errors
///
/// Propagates [`AttackError`] from any simulation.
///
/// # Panics
///
/// Panics if `attacks_list` has more than 64 entries (the mask width);
/// the Table-III registry is an order of magnitude below that.
pub fn minimal_cover(
    attacks_list: &[&'static dyn Attack],
    candidates: &[Defense],
    base: &UarchConfig,
) -> Result<CoverReport, AttackError> {
    assert!(
        attacks_list.len() <= AttackMask::BITS as usize,
        "cover search supports at most 64 attacks"
    );
    let attack_names: Vec<&'static str> = attacks_list.iter().map(|a| a.info().name).collect();
    let full: AttackMask = if attacks_list.is_empty() {
        0
    } else {
        (AttackMask::MAX) >> (AttackMask::BITS as usize - attacks_list.len())
    };

    // Singleton verdicts for every modeled candidate.
    let modeled: Vec<Defense> = candidates
        .iter()
        .filter(|d| d.is_modeled())
        .copied()
        .collect();
    let mut singleton_masks: Vec<AttackMask> = Vec::with_capacity(modeled.len());
    let mut singletons: Vec<SingletonCover> = Vec::with_capacity(modeled.len());
    for d in &modeled {
        let stack = DefenseStack::single(*d);
        let mut mask: AttackMask = 0;
        let mut blocks = Vec::new();
        for (i, attack) in attacks_list.iter().enumerate() {
            if verify_stack(&stack, *attack, base)? == Verdict::Blocked {
                mask |= 1 << i;
                blocks.push(attack_names[i]);
            }
        }
        singleton_masks.push(mask);
        singletons.push(SingletonCover {
            defense: d.name,
            blocks,
        });
    }

    // Attacks nothing blocks: coverage is impossible over these candidates.
    let union = singleton_masks.iter().fold(0, |acc, m| acc | m);
    let uncovered: Vec<&'static str> = attack_names
        .iter()
        .enumerate()
        .filter(|(i, _)| full & (1 << i) & !union != 0)
        .map(|(_, n)| *n)
        .collect();
    if full == 0 || union & full != full {
        // Nothing to cover, or coverage impossible: no stack to report.
        return Ok(CoverReport {
            attacks: attack_names,
            singletons,
            uncovered,
            greedy: None,
            minimal: None,
            stacks_verified: 0,
            false_sense_stacks: Vec::new(),
        });
    }

    // Deduplicate by machine effect: LFENCE and MFENCE are one candidate.
    let mut reps: Vec<usize> = Vec::new();
    for (i, d) in modeled.iter().enumerate() {
        let fp = d.overlay().expect("modeled").fingerprint();
        if !reps
            .iter()
            .any(|&j| modeled[j].overlay().expect("modeled").fingerprint() == fp)
        {
            reps.push(i);
        }
    }

    // Greedy upper bound (largest gain first, catalog order on ties).
    let mut remaining = full;
    let mut greedy_members: Vec<Defense> = Vec::new();
    while remaining != 0 {
        let best = reps
            .iter()
            .copied()
            .filter(|&i| {
                // Skip candidates that would conflict with the picks so far.
                let mut trial = greedy_members.clone();
                trial.push(modeled[i]);
                DefenseStack::new(trial).is_ok()
            })
            .max_by_key(|&i| (singleton_masks[i] & remaining).count_ones())
            .expect("union covers, so some candidate always gains");
        assert!(
            singleton_masks[best] & remaining != 0,
            "greedy cover stalled with attacks remaining"
        );
        remaining &= !singleton_masks[best];
        greedy_members.push(modeled[best]);
    }
    let greedy = DefenseStack::new(greedy_members).expect("greedy picks were conflict-checked");

    // Exhaustive search below the greedy bound, smallest size first. Only
    // combinations whose singleton union covers are worth simulating. The
    // shared session pool makes the per-candidate graph check an
    // incremental patch/rollback against each attack's one indexed graph.
    let mut sessions = SessionPool::new(attacks_list);
    let mut stacks_verified = 0usize;
    let mut false_sense_stacks: Vec<String> = Vec::new();
    let mut minimal: Option<DefenseStack> = None;
    'sizes: for k in 1..=greedy.members().len() {
        let mut combo: Vec<usize> = Vec::with_capacity(k);
        let mut found: Option<DefenseStack> = None;
        search_combinations(&reps, k, 0, &mut combo, &mut |chosen: &[usize]| -> Result<
            bool,
            AttackError,
        > {
            let mask = chosen
                .iter()
                .fold(0 as AttackMask, |acc, &i| acc | singleton_masks[i]);
            if mask & full != full {
                return Ok(false);
            }
            let Ok(stack) = DefenseStack::new(chosen.iter().map(|&i| modeled[i]).collect()) else {
                return Ok(false);
            };
            stacks_verified += 1;
            for attack in attacks_list {
                if verify_stack(&stack, *attack, base)? != Verdict::Blocked {
                    // Union arithmetic lied for this combination; keep
                    // searching — but if the bundle's strategies close
                    // every leak path on paper, record the §V-B false
                    // sense at search granularity.
                    if sessions.sufficient_for_all(&stack)? {
                        false_sense_stacks.push(stack.name().to_owned());
                    }
                    return Ok(false);
                }
            }
            found = Some(stack);
            Ok(true)
        })?;
        if let Some(stack) = found {
            minimal = Some(stack);
            break 'sizes;
        }
    }

    Ok(CoverReport {
        attacks: attack_names,
        singletons,
        uncovered,
        greedy: Some(greedy),
        minimal,
        stacks_verified,
        false_sense_stacks,
    })
}

/// Visits every `k`-combination of `reps[start..]` in lexicographic order;
/// stops early when the visitor returns `Ok(true)`.
fn search_combinations(
    reps: &[usize],
    k: usize,
    start: usize,
    combo: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]) -> Result<bool, AttackError>,
) -> Result<bool, AttackError> {
    if k == 0 {
        return visit(combo);
    }
    for pos in start..=reps.len().saturating_sub(k) {
        combo.push(reps[pos]);
        let done = search_combinations(reps, k - 1, pos + 1, combo, visit)?;
        combo.pop();
        if done {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn full_catalog_has_a_singleton_cover() {
        // Ubiquitous serialization (and NDA-style forwarding blocks) each
        // stop every variant alone, so the minimal stack over the whole
        // catalog has exactly one member.
        let report = minimal_cover(
            attacks::registry(),
            crate::registry(),
            &UarchConfig::default(),
        )
        .unwrap();
        assert!(report.uncovered.is_empty());
        let minimal = report.minimal.expect("full catalog covers everything");
        assert_eq!(minimal.members().len(), 1, "minimal: {minimal}");
        let greedy = report.greedy.expect("greedy exists when coverable");
        assert!(greedy.members().len() >= minimal.members().len());
        assert!(report.stacks_verified >= 1);
        // The report is self-consistent: the minimal stack's audit is clean.
        let audit = audit_stack(&minimal, attacks::registry(), &UarchConfig::default()).unwrap();
        assert!(audit.is_sufficient(), "{audit}");
    }

    #[test]
    fn practical_industry_candidates_cannot_cover_everything() {
        // The paper's point, machine-checked: without fencing every load,
        // hardware/OS mitigations leave same-context bounds-bypass leaks
        // to software masking, so no practical industry stack is
        // sufficient and the report says which attacks escape.
        let report = minimal_cover(
            attacks::registry(),
            &practical_industry(),
            &UarchConfig::default(),
        )
        .unwrap();
        assert!(report.minimal.is_none());
        assert!(report.greedy.is_none());
        for escaped in [
            attacks::names::SPECTRE_V1,
            attacks::names::SPECTRE_V1_1,
            attacks::names::SPECTRE_V1_2,
        ] {
            assert!(
                report.uncovered.contains(&escaped),
                "{escaped} should be uncoverable, got {:?}",
                report.uncovered
            );
        }
        assert!(report.to_string().contains("no sufficient stack"));
    }

    #[test]
    fn practical_industry_cover_needs_a_real_bundle_on_its_own_turf() {
        // Restricted to the attacks practical industry defenses *can*
        // block, the search finds a genuine multi-member bundle and proves
        // it minimal — no industry silver bullet exists.
        let report_all = minimal_cover(
            attacks::registry(),
            &practical_industry(),
            &UarchConfig::default(),
        )
        .unwrap();
        let coverable: Vec<&'static dyn Attack> = attacks::registry()
            .iter()
            .filter(|a| !report_all.uncovered.contains(&a.info().name))
            .copied()
            .collect();
        assert!(!coverable.is_empty());
        let report =
            minimal_cover(&coverable, &practical_industry(), &UarchConfig::default()).unwrap();
        let minimal = report.minimal.expect("coverable subset is covered");
        assert!(
            minimal.members().len() >= 2,
            "no industry silver bullet even on its own turf: {minimal}"
        );
        // BHI forces prediction *avoidance* into the bundle: flush-on-switch
        // members alone cannot be the predictor answer.
        assert!(
            minimal
                .members()
                .iter()
                .any(|d| d.name == crate::names::RETPOLINE),
            "expected retpoline in {minimal}"
        );
        let audit = audit_stack(&minimal, &coverable, &UarchConfig::default()).unwrap();
        assert!(audit.is_sufficient(), "{audit}");
    }

    #[test]
    fn preset_audit_calls_out_false_senses() {
        // linux_default blocks the injection/Meltdown families but leaks
        // Spectre v1 — and strategy ① *would* close v1's graph, so the
        // bundle is a stack-level false sense of security for it.
        let audit = audit_stack(
            &presets::linux_default(),
            attacks::registry(),
            &UarchConfig::default(),
        )
        .unwrap();
        assert!(!audit.is_sufficient());
        assert!(audit.blocked.contains(&attacks::names::MELTDOWN));
        assert!(audit.blocked.contains(&attacks::names::SPECTRE_V2));
        assert!(audit.leaked.contains(&attacks::names::SPECTRE_V1));
        assert!(audit.false_sense.contains(&attacks::names::SPECTRE_V1));
        assert!(audit.to_string().contains("false sense"));
    }

    #[test]
    fn empty_attack_set_reports_no_stack() {
        let report = minimal_cover(&[], crate::registry(), &UarchConfig::default()).unwrap();
        assert!(report.uncovered.is_empty());
        assert!(report.greedy.is_none());
        assert!(report.minimal.is_none());
        assert_eq!(report.stacks_verified, 0);
        assert!(report.false_sense_stacks.is_empty());
    }

    #[test]
    fn bulk_audit_matches_per_stack_audits() {
        let base = UarchConfig::default();
        let stacks: Vec<DefenseStack> = presets::all().into_iter().map(|(_, s)| s).collect();
        let bulk = audit_stacks(&stacks, attacks::registry(), &base).unwrap();
        assert_eq!(bulk.len(), stacks.len());
        for (stack, audit) in stacks.iter().zip(&bulk) {
            let single = audit_stack(stack, attacks::registry(), &base).unwrap();
            assert_eq!(audit.blocked, single.blocked, "{stack}");
            assert_eq!(audit.leaked, single.leaked, "{stack}");
            assert_eq!(audit.false_sense, single.false_sense, "{stack}");
        }
    }

    #[test]
    fn search_records_false_sense_covers() {
        // Over the v1 family, KPTI's singleton union can claim coverage it
        // cannot deliver only if its mask says so — instead check a set
        // where union arithmetic genuinely lies at least never yields a
        // graph-sufficient survivor: every recorded false-sense stack must
        // have leaked in simulation yet be strategy-sufficient everywhere.
        let report = minimal_cover(
            attacks::registry(),
            crate::registry(),
            &UarchConfig::default(),
        )
        .unwrap();
        for name in &report.false_sense_stacks {
            let stack = DefenseStack::parse(name).unwrap();
            let audit = audit_stack(&stack, attacks::registry(), &UarchConfig::default()).unwrap();
            assert!(!audit.is_sufficient(), "{name} was recorded as leaking");
            for attack in attacks::registry() {
                assert_eq!(
                    stack.graph_sufficient(*attack).unwrap(),
                    Some(true),
                    "{name} must be graph-sufficient for {}",
                    attack.info().name
                );
            }
        }
    }
}
