//! The defense-effectiveness matrix: Table II pairs verified by execution,
//! and the paper's claim that each defense works exactly where its inserted
//! security dependency matches the attack's missing edge.

use specgraph::prelude::*;
use uarch::UarchConfig;

fn defense(name: &str) -> Defense {
    defenses::catalog()
        .into_iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("defense {name} not in catalog"))
}

fn check(defense_name: &str, attack: &dyn Attack, expect_blocked: bool) {
    let d = defense(defense_name);
    let v = defenses::verify(&d, attack, &UarchConfig::default()).unwrap();
    let expected = if expect_blocked {
        Verdict::Blocked
    } else {
        Verdict::Leaked
    };
    assert_eq!(v, expected, "{} vs {}", defense_name, attack.info().name);
}

#[test]
fn table2_row_serialization() {
    check("LFENCE", &attacks::spectre_v1::SpectreV1, true);
    check("MFENCE", &attacks::spectre_v1::SpectreV1_1, true);
}

#[test]
fn table2_row_kernel_isolation() {
    check("KAISER/KPTI", &attacks::meltdown::Meltdown, true);
    // KPTI targets the kernel datapath only: user-space Spectre unaffected.
    check("KAISER/KPTI", &attacks::spectre_v1::SpectreV1, false);
}

#[test]
fn table2_row_prevent_mistraining() {
    for d in [
        "IBRS",
        "STIBP",
        "IBPB",
        "BTB invalidation on context switch",
    ] {
        check(d, &attacks::spectre_v2::SpectreV2, true);
    }
    check("Retpoline", &attacks::spectre_v2::SpectreV2, true);
    // Predictor flushing does not address same-context conditional
    // mis-training (v1 trains within one context here), nor Meltdown.
    check("IBPB", &attacks::meltdown::Meltdown, false);
}

#[test]
fn table2_row_store_load_serialization() {
    check("SSBB", &attacks::spectre_v4::SpectreV4, true);
    check("SSBS", &attacks::spectre_v4::SpectreV4, true);
    // SSB disable is irrelevant to Meltdown's intra-instruction race.
    check("SSBS", &attacks::meltdown::Meltdown, false);
}

#[test]
fn table2_row_rsb_stuffing() {
    check("RSB stuffing", &attacks::spectre_rsb::SpectreRsb, true);
    check("RSB stuffing", &attacks::spectre_v2::SpectreV2, false);
}

#[test]
fn academia_strategy2_blocks_everything() {
    // NDA-style "prevent use" sits at the chokepoint every variant must
    // pass through.
    for d in ["NDA", "SpecShield", "SpectreGuard", "ConTExT"] {
        let def = defense(d);
        for a in attacks::catalog() {
            let v = defenses::verify(&def, a.as_ref(), &UarchConfig::default()).unwrap();
            assert_eq!(v, Verdict::Blocked, "{d} vs {}", a.info().name);
        }
    }
}

#[test]
fn academia_strategy3_blocks_cache_channel_variants() {
    for d in [
        "STT",
        "InvisiSpec",
        "SafeSpec",
        "CleanupSpec",
        "Conditional Speculation",
    ] {
        let def = defense(d);
        for a in [
            &attacks::spectre_v1::SpectreV1 as &dyn Attack,
            &attacks::meltdown::Meltdown,
            &attacks::spectre_v2::SpectreV2,
        ] {
            let v = defenses::verify(&def, a, &UarchConfig::default()).unwrap();
            assert_eq!(v, Verdict::Blocked, "{d} vs {}", a.info().name);
        }
    }
}

#[test]
fn eager_permission_check_blocks_meltdown_family_only() {
    let def = defense("Eager permission check");
    for a in [
        &attacks::meltdown::Meltdown as &dyn Attack,
        &attacks::meltdown::SpectreV3a,
        &attacks::foreshadow::Foreshadow::sgx(),
        &attacks::mds::Fallout,
        &attacks::tsx::Taa,
    ] {
        let v = defenses::verify(&def, a, &UarchConfig::default()).unwrap();
        assert_eq!(v, Verdict::Blocked, "eager check vs {}", a.info().name);
    }
    // …but not Spectre v1: its authorization is a *branch*, not the
    // intra-instruction permission check.
    let v = defenses::verify(
        &def,
        &attacks::spectre_v1::SpectreV1,
        &UarchConfig::default(),
    )
    .unwrap();
    assert_eq!(v, Verdict::Leaked);
}

#[test]
fn full_matrix_has_no_simulator_failures() {
    // Smoke-run the complete matrix (29 defenses × 18 attacks); verify it
    // produces a verdict everywhere (the table3/table2 benches print it).
    let ds = defenses::catalog();
    let atks = attacks::catalog();
    let m = defenses::verify_matrix(&ds, &atks, &UarchConfig::default()).unwrap();
    assert_eq!(m.len(), atks.len());
    for row in &m {
        assert_eq!(row.verdicts.len(), ds.len());
    }
}

#[test]
fn graph_level_and_machine_level_agree_for_strategy1() {
    // For Spectre v1: patching strategy ① in the graph removes the race;
    // the corresponding machine knob removes the leak.
    let mut sa = attacks::spectre_v1::SpectreV1.graph();
    defenses::patch_strategy(&mut sa, Strategy::PreventAccess).unwrap();
    assert!(sa.is_secure().unwrap());
    let cfg = UarchConfig::builder().no_speculative_loads(true).build();
    let out = attacks::spectre_v1::SpectreV1.run(&cfg).unwrap();
    assert!(!out.leaked);
}
