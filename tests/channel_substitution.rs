//! §V-A, dimension 3: the covert channel is exchangeable. The same Spectre
//! v1 transient window can exfiltrate through Prime+Probe instead of
//! Flush+Reload — "a new combination … gives a new attack".

use attacks::common::{BOUND_CELL, BOUND_PTR, VICTIM_ARRAY};
use channels::prime_probe::PrimeProbe;
use specgraph::prelude::*;
use uarch::cache::LINE_SIZE;

/// Secret small enough to index cache sets directly (Prime+Probe carries
/// one symbol per monitored set).
const SMALL_SECRET: u64 = 5;

/// Receiver's prime buffer (page aligned).
const PRIME_BASE: u64 = 0x200_0000;

/// Sender-side buffer whose lines map onto the monitored sets.
const SENDER_BASE: u64 = 0x300_0000;

/// Cache-set offset keeping the monitored range clear of the sets the
/// victim's own bound/array lines map to (sets 0, 4 and 8 here).
const BASE_SET: usize = 16;

/// Spectre v1 gadget sending through a *line-granular* buffer: the send
/// address is `SENDER_BASE + (BASE_SET + secret) * 64`, hitting cache set
/// `BASE_SET + secret`.
fn gadget() -> isa::Program {
    use isa::AluOp;
    ProgramBuilder::new()
        .load(Reg::R4, Reg::R2, 0)
        .load(Reg::R4, Reg::R4, 0)
        .branch_if(isa::Cond::Ge, Reg::R0, Reg::R4, "out")
        .alu_imm(AluOp::Shl, Reg::R5, Reg::R0, 3)
        .alu(AluOp::Add, Reg::R5, Reg::R5, Reg::R1)
        .load(Reg::R6, Reg::R5, 0) // Load S
        .branch_if(isa::Cond::Eq, Reg::R6, Reg::ZERO, "out")
        .alu_imm(AluOp::Mul, Reg::R7, Reg::R6, LINE_SIZE) // one line per symbol
        .alu_imm(AluOp::Add, Reg::R7, Reg::R7, (BASE_SET as u64) * LINE_SIZE)
        .alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R3)
        .load(Reg::R8, Reg::R7, 0) // send: evicts the receiver's primed way
        .label("out")
        .unwrap()
        .halt()
        .build()
        .unwrap()
}

#[test]
fn spectre_v1_leaks_through_prime_probe() {
    let mut m = Machine::new(UarchConfig::default());
    m.map_user_page(VICTIM_ARRAY).unwrap();
    m.map_user_page(BOUND_PTR).unwrap();
    m.map_user_page(SENDER_BASE).unwrap();
    m.write_u64(BOUND_PTR, BOUND_CELL).unwrap();
    m.write_u64(BOUND_CELL, 8).unwrap();
    m.write_u64(VICTIM_ARRAY + 64 * 8, SMALL_SECRET).unwrap();
    for i in 0..8 {
        m.write_u64(VICTIM_ARRAY + i * 8, 1).unwrap();
    }
    let p = gadget();

    // Train the bounds-check branch.
    for i in 0..4 {
        m.set_reg(Reg::R0, i % 8);
        m.set_reg(Reg::R1, VICTIM_ARRAY);
        m.set_reg(Reg::R2, BOUND_PTR);
        m.set_reg(Reg::R3, SENDER_BASE);
        m.run(&p).unwrap();
    }

    // Receiver primes the monitored sets.
    let ch = PrimeProbe::with_base_set(PRIME_BASE, 8, BASE_SET);
    ch.prime(&mut m).unwrap();

    // Attack: out-of-bounds index; the transient send touches the line in
    // set SMALL_SECRET, evicting a primed way.
    m.flush_line(BOUND_PTR).unwrap();
    m.flush_line(BOUND_CELL).unwrap();
    m.set_reg(Reg::R0, 64);
    m.set_reg(Reg::R1, VICTIM_ARRAY);
    m.set_reg(Reg::R2, BOUND_PTR);
    m.set_reg(Reg::R3, SENDER_BASE);
    m.run(&p).unwrap();

    // Probe: the slow set is the secret.
    let reading = ch.probe(&mut m).unwrap();
    assert_eq!(
        reading.recovered,
        Some(SMALL_SECRET as usize),
        "Prime+Probe must recover the secret: {reading:?}"
    );
}

#[test]
fn prime_probe_variant_is_a_novel_point_in_the_design_space() {
    let p = discovery::AttackPoint {
        source: discovery::SecretSourceDim::ArchitecturalMemory,
        delay: discovery::DelayMechanism::ConditionalBranch,
        channel: discovery::Channel::PrimeProbe,
    };
    // Not in the published Flush+Reload catalog…
    assert!(p.known_variant().is_none());
    // …but its attack graph races all the same.
    assert_eq!(p.graph().vulnerabilities().unwrap().len(), 3);
}

#[test]
fn defense_strategy_3_blocks_the_substituted_channel_too() {
    // CleanupSpec undoes the speculative fill regardless of which channel
    // would have read it: the strategy, not the channel, is what matters.
    let mut m = Machine::new(UarchConfig::builder().cleanup_spec(true).build());
    m.map_user_page(VICTIM_ARRAY).unwrap();
    m.map_user_page(BOUND_PTR).unwrap();
    m.map_user_page(SENDER_BASE).unwrap();
    m.write_u64(BOUND_PTR, BOUND_CELL).unwrap();
    m.write_u64(BOUND_CELL, 8).unwrap();
    m.write_u64(VICTIM_ARRAY + 64 * 8, SMALL_SECRET).unwrap();
    for i in 0..8 {
        m.write_u64(VICTIM_ARRAY + i * 8, 1).unwrap();
    }
    let p = gadget();
    for i in 0..4 {
        m.set_reg(Reg::R0, i % 8);
        m.set_reg(Reg::R1, VICTIM_ARRAY);
        m.set_reg(Reg::R2, BOUND_PTR);
        m.set_reg(Reg::R3, SENDER_BASE);
        m.run(&p).unwrap();
    }
    let ch = PrimeProbe::with_base_set(PRIME_BASE, 8, BASE_SET);
    ch.prime(&mut m).unwrap();
    m.flush_line(BOUND_PTR).unwrap();
    m.flush_line(BOUND_CELL).unwrap();
    m.set_reg(Reg::R0, 64);
    m.set_reg(Reg::R1, VICTIM_ARRAY);
    m.set_reg(Reg::R2, BOUND_PTR);
    m.set_reg(Reg::R3, SENDER_BASE);
    m.run(&p).unwrap();
    let reading = ch.probe(&mut m).unwrap();
    assert_eq!(
        reading.recovered, None,
        "CleanupSpec must undo the eviction"
    );
}
