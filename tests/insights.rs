//! The paper's six numbered Insights (§VI), each as an executable
//! assertion over the whole system.

use specgraph::prelude::*;
use uarch::UarchConfig;

/// Insight 1: "The root cause of speculative attacks succeeding is a
/// missing edge in the attack graph between the authorization operation
/// and the secret access operation."
#[test]
fn insight1_missing_edge_is_the_root_cause() {
    for attack in attacks::catalog() {
        let sa = attack.graph();
        let g = sa.graph();
        let auths = g.nodes_of_kind(NodeKind::is_authorization);
        let accesses = g.nodes_of_kind(NodeKind::is_secret_access);
        let has_missing_edge = auths.iter().any(|&a| {
            accesses
                .iter()
                .any(|&s| g.has_race(a, s).expect("nodes exist"))
        });
        // The graph predicts the attack; the simulator confirms it.
        let leaked = attack.run(&UarchConfig::default()).expect("runs").leaked;
        assert!(has_missing_edge, "{}", attack.info().name);
        assert!(leaked, "{}", attack.info().name);
    }
}

/// Insight 2: a security dependency ≡ the missing edge enforcing
/// authorization-before-access.
#[test]
fn insight2_security_dependency_is_the_missing_edge() {
    let mut sa = attacks::spectre_v1::SpectreV1.graph();
    let before = sa.vulnerabilities().expect("analyzable").len();
    assert!(before > 0);
    let inserted = sa.patch_all().expect("patchable");
    assert_eq!(inserted, before, "one edge per missing dependency");
    assert!(sa.is_secure().expect("analyzable"));
}

/// Insight 3: the security dependencies give the defense strategies, and
/// every cataloged defense falls under one of the four.
#[test]
fn insight3_every_defense_has_a_strategy() {
    let catalog = defenses::catalog();
    assert!(catalog.len() >= 25, "the catalog covers Table II + §V-B");
    for s in Strategy::all() {
        assert!(
            catalog.iter().any(|d| d.strategy == s),
            "strategy {s} unrepresented"
        );
    }
}

/// Insight 4: falling under a strategy *explains why* the defense works —
/// the graph patch removes the race and the machine verdict agrees.
#[test]
fn insight4_strategy_explains_the_defense() {
    // NDA (strategy ②) vs Meltdown: the graph patch closes the use/send
    // path, and the machine run is blocked with an attributable event.
    let mut sa = attacks::meltdown::Meltdown.graph();
    defenses::patch_strategy(&mut sa, Strategy::PreventUse).expect("applicable");
    let vulns = sa.vulnerabilities().expect("analyzable");
    assert!(vulns
        .iter()
        .all(|v| !matches!(v.protected_kind, NodeKind::Send)));
    let out = attacks::meltdown::Meltdown
        .run(&UarchConfig::builder().nda(true).build())
        .expect("runs");
    assert!(!out.leaked);
    assert!(out.defense_blocks > 0, "the block is attributable");
}

/// Insight 5: security dependencies can be relaxed (allow access, prevent
/// leak) for performance — strategy ① costs more than ②/③ on benign code.
#[test]
fn insight5_relaxation_trades_performance() {
    use isa::{AluOp, Cond, ProgramBuilder, Reg};
    // A benign branchy loop with loads.
    let p = ProgramBuilder::new()
        .imm(Reg::R0, 0x9000)
        .imm(Reg::R1, 24)
        .label("loop")
        .expect("fresh")
        .load(Reg::R3, Reg::R0, 0)
        .branch_if(Cond::Eq, Reg::R3, Reg::ZERO, "skip")
        .alu(AluOp::Add, Reg::R2, Reg::R2, Reg::R3)
        .label("skip")
        .expect("fresh")
        .alu_imm(AluOp::Add, Reg::R0, Reg::R0, 8)
        .alu_imm(AluOp::Sub, Reg::R1, Reg::R1, 1)
        .branch_if(Cond::Ne, Reg::R1, Reg::ZERO, "loop")
        .halt()
        .build()
        .expect("builds");
    let run = |cfg: &UarchConfig| {
        let mut m = uarch::Machine::new(cfg.clone());
        m.map_user_page(0x9000).expect("mappable");
        for i in 0..32 {
            m.write_u64(0x9000 + i * 8, i + 1).expect("mapped");
        }
        m.run(&p).expect("runs").cycles
    };
    let strict = run(&UarchConfig::builder().no_speculative_loads(true).build());
    let relaxed_use = run(&UarchConfig::builder().nda(true).build());
    let relaxed_send = run(&UarchConfig::builder().stt(true).build());
    assert!(strict > relaxed_use, "① {strict} vs ② {relaxed_use}");
    assert!(strict > relaxed_send, "① {strict} vs ③ {relaxed_send}");
    assert!(
        relaxed_use >= relaxed_send,
        "② {relaxed_use} vs ③ {relaxed_send}"
    );
}

/// Insight 6: Spectre-type attacks need only inter-instruction modeling;
/// Meltdown-type attacks need intra-instruction (micro-op) modeling — and
/// the Figure-9 tool exploits exactly that split.
#[test]
fn insight6_modeling_level_split() {
    use analyzer::{AnalysisConfig, Analyzer, GadgetClass};
    let spectre_count = attacks::catalog()
        .iter()
        .filter(|a| a.info().class == AttackClass::Spectre)
        .count();
    let meltdown_count = attacks::catalog()
        .iter()
        .filter(|a| a.info().class == AttackClass::Meltdown)
        .count();
    // v1, v1.1, v1.2, v2, v4, RSB, Retbleed, BHI, Zenbleed, Inception
    assert_eq!(spectre_count, 10);
    assert_eq!(meltdown_count, 12);

    // The tool keeps Spectre-type inputs at the instruction level (node
    // count == instruction count) and expands Meltdown-type inputs
    // (node count > instruction count: micro-op decomposition).
    let src = "load r6, [r5]\nadd r7, r6, r3\nload r8, [r7]\nhalt";
    let p = isa::asm::assemble(src).expect("assembles");
    let kernel = Analyzer::new(AnalysisConfig::default())
        .analyze(&p)
        .expect("ok");
    assert!(kernel.gadgets.is_empty(), "no authorization, no gadget");
    let user = Analyzer::new(AnalysisConfig {
        user_mode: true,
        ..AnalysisConfig::default()
    })
    .analyze(&p)
    .expect("ok");
    assert_eq!(user.gadgets[0].class, GadgetClass::MeltdownType);
    assert_eq!(
        user.graph.graph().node_count(),
        p.len() + 1,
        "the faulting load split into check + read"
    );
}
