//! Cross-crate integration: every Table-III attack variant runs end-to-end
//! on the vulnerable baseline and is neutralized on hardened silicon.

use specgraph::prelude::*;

#[test]
fn every_variant_leaks_on_the_vulnerable_baseline() {
    let cfg = UarchConfig::default();
    for attack in attacks::catalog() {
        let out = attack.run(&cfg).expect("simulation runs");
        assert!(
            out.leaked,
            "{} must leak on the baseline: {out}",
            attack.info().name
        );
        assert!(out.recovered.is_some());
    }
}

#[test]
fn no_variant_leaks_on_hardened_silicon() {
    let cfg = UarchConfig::hardened();
    for attack in attacks::catalog() {
        let out = attack.run(&cfg).expect("simulation runs");
        assert!(
            !out.leaked,
            "{} must be blocked on hardened hardware: {out}",
            attack.info().name
        );
    }
}

#[test]
fn every_variant_squashes_its_transient_path() {
    // The architectural contract: mis-speculation is rolled back. Every
    // attack run must observe at least one squash or transaction abort —
    // the leak happens *despite* correct architectural behavior.
    let cfg = UarchConfig::default();
    for attack in attacks::catalog() {
        let out = attack.run(&cfg).expect("simulation runs");
        assert!(
            out.squashes > 0,
            "{} must squash its transient window",
            attack.info().name
        );
    }
}

#[test]
fn spectre_type_attacks_mispredict_meltdown_type_fault() {
    // Insight 6: the two families differ in where the authorization lives.
    for attack in attacks::catalog() {
        let info = attack.info();
        match info.class {
            AttackClass::Spectre => {
                // Spectre-type authorizations are resolutions of predicted
                // control/data flow.
                assert!(
                    info.authorization.contains("resolution")
                        || info.authorization.contains("check"),
                    "{}: {}",
                    info.name,
                    info.authorization
                );
            }
            AttackClass::Meltdown => {
                assert!(
                    info.authorization.to_lowercase().contains("check")
                        || info.authorization.contains("Abort"),
                    "{}: {}",
                    info.name,
                    info.authorization
                );
            }
        }
    }
}

#[test]
fn defense_blocks_are_observable_when_defended() {
    // When NDA blocks an attack, the event log says *why* (DefenseBlocked),
    // matching the paper's explanation requirement.
    let cfg = UarchConfig::builder().nda(true).build();
    let out = attacks::spectre_v1::SpectreV1.run(&cfg).unwrap();
    assert!(!out.leaked);
    assert!(out.defense_blocks > 0, "the block must be attributable");
}

#[test]
fn insufficiency_experiment_reproduces_section_5b() {
    let r = specgraph::insufficiency::run_experiment().unwrap();
    assert!(r.baseline.leaked);
    assert!(!r.partial_blocks_baseline.leaked);
    assert!(r.partial_bypassed_via_cache.leaked);
    assert!(!r.full_blocks_everything.leaked);
}

#[test]
fn deterministic_replay() {
    // The simulator is deterministic: two identical runs give identical
    // outcomes cycle-for-cycle.
    let cfg = UarchConfig::default();
    let a = attacks::meltdown::Meltdown.run(&cfg).unwrap();
    let b = attacks::meltdown::Meltdown.run(&cfg).unwrap();
    assert_eq!(a, b);
}
