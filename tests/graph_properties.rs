//! Paper-level invariants on the attack graphs, checked across the whole
//! catalog and with property-based exploration of the discovery space.

use proptest::prelude::*;
use specgraph::prelude::*;

#[test]
fn every_attack_graph_races_between_authorization_and_access() {
    // Insight 1: the root cause is a missing edge between the authorization
    // operation and the secret access operation.
    for attack in attacks::catalog() {
        let sa = attack.graph();
        let g = sa.graph();
        let auths = g.nodes_of_kind(NodeKind::is_authorization);
        let accesses = g.nodes_of_kind(NodeKind::is_secret_access);
        assert!(!auths.is_empty(), "{}", attack.info().name);
        assert!(!accesses.is_empty(), "{}", attack.info().name);
        let mut found = false;
        for &a in &auths {
            for &s in &accesses {
                if g.has_race(a, s).unwrap() {
                    found = true;
                }
            }
        }
        assert!(
            found,
            "{}: no authorization/access race in its graph",
            attack.info().name
        );
    }
}

#[test]
fn patching_the_access_edge_secures_every_catalog_graph() {
    // Insight 2/3: inserting the missing security dependency (strategy ①)
    // removes the race, for every variant.
    for attack in attacks::catalog() {
        let mut sa = attack.graph();
        defenses::patch_strategy(&mut sa, defenses::Strategy::PreventAccess).unwrap();
        assert!(
            sa.is_secure().unwrap(),
            "{}: strategy ① did not secure the graph",
            attack.info().name
        );
    }
}

#[test]
fn strategies_2_and_3_leave_the_access_race_but_close_the_leak_path() {
    // Insight 5: relaxed strategies allow the access but stop use/send.
    for attack in attacks::catalog() {
        let mut sa = attack.graph();
        defenses::patch_strategy(&mut sa, defenses::Strategy::PreventSend).unwrap();
        let vulns = sa.vulnerabilities().unwrap();
        assert!(
            vulns
                .iter()
                .all(|v| !matches!(v.protected_kind, NodeKind::Send)),
            "{}: send still races after strategy ③",
            attack.info().name
        );
    }
}

#[test]
fn meltdown_type_graphs_decompose_one_instruction() {
    // Insight 6: Meltdown-type graphs contain the intra-instruction pair —
    // both the check and the read hang off the same load/register-access
    // instruction node.
    for attack in attacks::catalog() {
        if attack.info().class != AttackClass::Meltdown {
            continue;
        }
        let sa = attack.graph();
        let g = sa.graph();
        // Find the instruction node that issues both the authorization and
        // the access.
        let instr = g
            .nodes()
            .find(|n| {
                let id = n.id();
                let succ_kinds: Vec<NodeKind> = g
                    .successors(id)
                    .unwrap()
                    .map(|e| g.node(e.to()).unwrap().kind())
                    .collect();
                succ_kinds.iter().any(|k| k.is_authorization())
                    && succ_kinds.iter().any(|k| k.is_secret_access())
            })
            .map(|n| n.label().to_owned());
        assert!(
            instr.is_some(),
            "{}: no intra-instruction decomposition found",
            attack.info().name
        );
    }
}

#[test]
fn text_serialization_roundtrips_every_catalog_graph() {
    // The tool-interchange format preserves every figure's structure,
    // kinds, and declared requirements.
    for attack in attacks::catalog() {
        let sa = attack.graph();
        let text = tsg::text::to_text(&sa);
        let sa2 = tsg::text::from_text(&text).unwrap_or_else(|e| {
            panic!(
                "{}: {e}
{text}",
                attack.info().name
            )
        });
        assert_eq!(sa2.graph().node_count(), sa.graph().node_count());
        assert_eq!(sa2.graph().edge_count(), sa.graph().edge_count());
        assert_eq!(sa2.requirements(), sa.requirements());
        assert_eq!(
            sa2.vulnerabilities().unwrap().len(),
            sa.vulnerabilities().unwrap().len(),
            "{}: verdict must survive the round trip",
            attack.info().name
        );
    }
}

#[test]
fn dot_export_of_all_figures_is_renderable() {
    for attack in attacks::catalog() {
        let dot = attack.graph().into_graph().to_dot(attack.info().name);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"));
        assert!(dot.ends_with("}\n"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Discovery space: every point's template graph races, and the race is
    /// always fixable by strategy ①.
    #[test]
    fn discovery_points_race_and_are_securable(idx in 0usize..192) {
        let points = discovery::design_space();
        let p = points[idx];
        let mut sa = p.graph();
        prop_assert_eq!(sa.vulnerabilities().unwrap().len(), 3);
        defenses::patch_strategy(&mut sa, defenses::Strategy::PreventAccess).unwrap();
        prop_assert!(sa.is_secure().unwrap());
    }

    /// Random subsets of requirements: patching all reported vulnerabilities
    /// always converges to a secure graph (no oscillation).
    #[test]
    fn patch_all_converges(idx in 0usize..18) {
        let catalog = attacks::catalog();
        let mut sa = catalog[idx % catalog.len()].graph();
        let n = sa.patch_all().unwrap();
        prop_assert!(n >= 1);
        prop_assert!(sa.is_secure().unwrap());
        prop_assert_eq!(sa.patch_all().unwrap(), 0);
    }
}
