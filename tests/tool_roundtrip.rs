//! The Figure-9 tool applied to the *actual attack programs*: detect the
//! gadget, build the graph, patch with a fence, and verify on the simulator
//! that the patched program no longer leaks.

use analyzer::{AnalysisConfig, Analyzer, GadgetClass};
use attacks::common::{
    machine_with_channel, probe_channel, BOUND_CELL, BOUND_PTR, PROBE_BASE, SECRET, VICTIM_ARRAY,
};
use specgraph::prelude::*;

/// Re-create the Spectre v1 attack environment around an arbitrary victim
/// program and report whether the secret leaked.
fn leaks(program: &isa::Program) -> bool {
    let mut m = machine_with_channel(&UarchConfig::default()).unwrap();
    m.map_user_page(VICTIM_ARRAY).unwrap();
    m.map_user_page(BOUND_PTR).unwrap();
    m.write_u64(BOUND_PTR, BOUND_CELL).unwrap();
    m.write_u64(BOUND_CELL, 8).unwrap();
    m.write_u64(VICTIM_ARRAY + 64 * 8, SECRET).unwrap();
    for i in 0..8 {
        m.write_u64(VICTIM_ARRAY + i * 8, 1).unwrap();
    }
    // Train.
    for i in 0..4 {
        m.set_reg(Reg::R0, i % 8);
        m.set_reg(Reg::R1, VICTIM_ARRAY);
        m.set_reg(Reg::R2, BOUND_PTR);
        m.set_reg(Reg::R3, PROBE_BASE);
        m.run(program).unwrap();
    }
    // Attack.
    m.flush_line(BOUND_PTR).unwrap();
    m.flush_line(BOUND_CELL).unwrap();
    probe_channel().prepare(&mut m).unwrap();
    m.set_reg(Reg::R0, 64);
    m.set_reg(Reg::R1, VICTIM_ARRAY);
    m.set_reg(Reg::R2, BOUND_PTR);
    m.set_reg(Reg::R3, PROBE_BASE);
    m.run(program).unwrap();
    let reading = probe_channel().receive(&mut m).unwrap();
    reading.recovered == Some(SECRET as usize)
}

#[test]
fn tool_finds_the_gadget_in_the_real_spectre_v1_program() {
    let program = attacks::spectre_v1::SpectreV1::program().unwrap();
    let report = Analyzer::new(AnalysisConfig::default())
        .analyze(&program)
        .unwrap();
    assert!(
        report
            .gadgets
            .iter()
            .any(|g| g.class == GadgetClass::SpectreType),
        "{:?}",
        report.gadgets
    );
    assert!(!report.vulnerabilities.is_empty());
}

#[test]
fn fence_patch_stops_the_real_leak() {
    let program = attacks::spectre_v1::SpectreV1::program().unwrap();
    assert!(leaks(&program), "unpatched program must leak");

    let report = Analyzer::new(AnalysisConfig::default())
        .analyze(&program)
        .unwrap();
    let patched = report.patch_with_fences(&program).unwrap();
    assert!(patched.len() > program.len(), "fences were inserted");
    assert!(!leaks(&patched), "patched program must not leak");

    // And the tool agrees with itself: the patched program's graph is
    // secure.
    let report2 = Analyzer::new(AnalysisConfig::default())
        .analyze(&patched)
        .unwrap();
    assert!(report2.vulnerabilities.is_empty());
}

#[test]
fn address_masking_patch_stops_the_real_leak() {
    // The V8/Linux-style mitigation: mask the index right after the bounds
    // check so out-of-bounds addresses are unrepresentable. The in-bounds
    // size is 8 words, so mask = 7.
    let program = attacks::spectre_v1::SpectreV1::program().unwrap();
    let report = Analyzer::new(AnalysisConfig::default())
        .analyze(&program)
        .unwrap();
    let gadget = &report.gadgets[0];
    let masked = analyzer::mask_index(&program, gadget.auth_pc + 1, Reg::R0, 0x7).unwrap();
    assert!(!leaks(&masked), "masked program must not leak the secret");
}

#[test]
fn sabc_data_dependency_patch_stops_the_real_leak() {
    // §V-B: SABC serializes the branch and the access by *data dependency*
    // instead of a fence. Tie the index register (r0) to the slow bound
    // (r4) right after the bounds check.
    let program = attacks::spectre_v1::SpectreV1::program().unwrap();
    let report = Analyzer::new(AnalysisConfig::default())
        .analyze(&program)
        .unwrap();
    let gadget = report
        .gadgets
        .iter()
        .find(|g| g.class == GadgetClass::SpectreType)
        .unwrap();
    let patched = analyzer::sabc_serialize(
        &program,
        gadget.auth_pc + 1,
        Reg::R0,  // the index feeding the access address
        Reg::R4,  // the (slow) bound the branch waits for
        Reg::R13, // scratch
    )
    .unwrap();
    assert!(leaks(&program), "unpatched leaks");
    assert!(!leaks(&patched), "SABC-patched program must not leak");
}

#[test]
fn tool_classifies_meltdown_gadget_as_intra_instruction() {
    // The Meltdown gadget, analyzed in user mode, is Meltdown-type: the
    // tool must decompose it rather than propose a (useless) fence.
    let program = isa::asm::assemble(
        "load r6, [r5]\nbeq r6, zero, done\nmul r7, r6, 0x1040\nadd r7, r7, r3\nload r8, [r7]\ndone: halt",
    )
    .unwrap();
    let report = Analyzer::new(AnalysisConfig {
        user_mode: true,
        ..AnalysisConfig::default()
    })
    .analyze(&program)
    .unwrap();
    assert!(report
        .gadgets
        .iter()
        .any(|g| g.class == GadgetClass::MeltdownType));
    // Fences don't change the program for Meltdown-type gadgets.
    let patched = report.patch_with_fences(&program).unwrap();
    assert_eq!(patched.len(), program.len());
}

#[test]
fn tool_graph_matches_handwritten_figure_for_spectre_v1() {
    // Both the hand-modeled Figure 1 and the tool-generated graph must
    // agree on the verdict: the authorization races with access, use and
    // send.
    let hand = attacks::spectre_v1::SpectreV1.graph();
    let hand_vulns = hand.vulnerabilities().unwrap().len();
    let program = attacks::spectre_v1::SpectreV1::program().unwrap();
    let tool = Analyzer::new(AnalysisConfig::default())
        .analyze(&program)
        .unwrap();
    let tool_vulns = tool.vulnerabilities.len();
    assert_eq!(hand_vulns, 3);
    // The tool models each ALU transform as its own "use" node, where the
    // hand-drawn Figure 1 merges them into one "Compute load address R" —
    // so the tool reports at least as many races, never fewer.
    assert!(
        tool_vulns >= hand_vulns,
        "tool found {tool_vulns} < {hand_vulns}"
    );
    // Both agree on the critical pair: an access and a send race with the
    // authorization.
    use tsg::NodeKind;
    assert!(tool
        .vulnerabilities
        .iter()
        .any(|v| v.protected_kind.is_secret_access()));
    assert!(tool
        .vulnerabilities
        .iter()
        .any(|v| matches!(v.protected_kind, NodeKind::Send)));
}
