//! Campaign-engine acceptance: one `core::campaign` run must reproduce
//! the Table-III × defense-catalog verdicts of the seed's per-pair
//! `scenario::evaluate` path, cell for cell, and stay deterministic under
//! parallelism.

use specgraph::prelude::*;
use uarch::UarchConfig;

#[test]
fn one_campaign_call_reproduces_the_per_pair_evaluation_path() {
    let base = UarchConfig::default();
    let matrix = CampaignMatrix::run(&CampaignSpec::builder(base.clone()).build()).unwrap();
    let (a, d, c) = matrix.shape();
    assert_eq!(a, attacks::registry().len());
    assert_eq!(d, defenses::registry().len());
    assert_eq!(c, 1);

    // Cell-for-cell identity with the seed's nested per-pair loop.
    let mut cells = matrix.cells().iter();
    for attack in attacks::registry() {
        for defense in defenses::registry() {
            let expected = scenario::evaluate(*attack, defense, &base).unwrap();
            let cell = cells.next().expect("campaign covers the full matrix");
            assert_eq!(
                cell.evaluation,
                expected,
                "campaign disagrees with per-pair evaluate for {} vs {}",
                defense.name,
                attack.info().name
            );
        }
    }
    assert!(cells.next().is_none(), "campaign produced extra cells");
}

#[test]
fn evaluate_all_is_a_thin_campaign_consumer_with_the_seed_shape() {
    let base = UarchConfig::default();
    let (evals, false_sense) = scenario::evaluate_all(&base).unwrap();
    assert_eq!(
        evals.len(),
        attacks::registry().len() * defenses::registry().len()
    );
    // The paper's warning is not hypothetical (KPTI vs Spectre v1, …).
    assert!(false_sense > 0);
    assert_eq!(
        false_sense,
        evals.iter().filter(|e| e.false_sense_of_security()).count()
    );
    // Same order as the seed's attack-major nested loop.
    assert_eq!(evals[0].attack, attacks::names::SPECTRE_V1);
    assert_eq!(evals[0].defense, defenses::names::LFENCE);
}

#[test]
fn parallel_and_serial_campaigns_agree_exactly() {
    let serial = CampaignSpec {
        threads: 1,
        ..CampaignSpec::default()
    };
    let parallel = CampaignSpec {
        threads: 8,
        ..CampaignSpec::default()
    };
    let a = CampaignMatrix::run(&serial).unwrap();
    let b = CampaignMatrix::run(&parallel).unwrap();
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn known_verdicts_surface_through_matrix_lookups() {
    let matrix = CampaignMatrix::run(&CampaignSpec::default()).unwrap();
    // KPTI blocks Meltdown but is the canonical false sense vs Spectre v1.
    let kpti_meltdown = matrix
        .cell(attacks::names::MELTDOWN, defenses::names::KPTI, 0)
        .unwrap();
    assert_eq!(kpti_meltdown.evaluation.mechanism, Verdict::Blocked);
    let kpti_v1 = matrix
        .cell(attacks::names::SPECTRE_V1, defenses::names::KPTI, 0)
        .unwrap();
    assert!(kpti_v1.false_sense_of_security());
    assert!(matrix
        .false_senses()
        .iter()
        .any(|cell| cell.attack == attacks::names::SPECTRE_V1
            && cell.defense == defenses::names::KPTI));
    // NDA blocks everything (strategy ② at the use chokepoint).
    for a in attacks::registry() {
        let cell = matrix.cell(a.info().name, defenses::names::NDA, 0).unwrap();
        assert_eq!(
            cell.evaluation.mechanism,
            Verdict::Blocked,
            "NDA must block {}",
            a.info().name
        );
    }
    // Baselines: every variant leaks undefended and its graph races.
    for b in matrix.baselines() {
        assert!(b.leaked, "{} must leak on the baseline", b.info.name);
        assert!(b.graph_race, "{} graph must race", b.info.name);
    }
}

#[test]
fn filter_extracts_strategy_slices() {
    let matrix = CampaignMatrix::run(&CampaignSpec::default()).unwrap();
    let send_cells = matrix.filter(|cell| cell.evaluation.strategy == Strategy::PreventSend);
    let send_defenses = defenses::registry()
        .iter()
        .filter(|d| d.strategy == Strategy::PreventSend)
        .count();
    assert_eq!(send_cells.len(), send_defenses * attacks::registry().len());
}

mod sharding_and_incremental {
    use proptest::prelude::*;
    use specgraph::campaign::{CampaignShard, Knob};
    use specgraph::prelude::*;
    use uarch::UarchConfig;

    /// A 3×2×2 subcube: big enough that every shard split is non-trivial,
    /// small enough for repeated property cases.
    fn grid_spec() -> CampaignSpec {
        CampaignSpec::builder(UarchConfig::default())
            .attacks(attacks::registry().iter().copied().take(3))
            .defenses(defenses::registry().iter().copied().take(2))
            .axis(Knob::CacheSets, [64usize, 32])
            .build()
    }

    #[test]
    fn acceptance_merge_is_bit_identical_for_2_3_7_shards() {
        let spec = CampaignSpec::builder(UarchConfig::default())
            .attacks(attacks::registry().iter().copied().take(5))
            .defenses(defenses::registry().iter().copied().take(4))
            .axis(Knob::RobDepth, [32usize, 64])
            .build();
        let whole = CampaignMatrix::run(&spec).unwrap();
        for n in [2usize, 3, 7] {
            let parts = spec
                .shards(n)
                .iter()
                .map(|s| s.run().expect("shard runs"))
                .collect::<Vec<_>>();
            let merged = CampaignMatrix::merge(parts).expect("shards merge");
            assert_eq!(merged.to_csv(), whole.to_csv(), "CSV differs for n={n}");
            assert_eq!(merged.to_json(), whole.to_json(), "JSON differs for n={n}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// merge(shards(n)) equals one single-shot run cell for cell, for
        /// arbitrary shard counts (including more shards than tasks).
        #[test]
        fn merge_of_any_shard_split_equals_single_shot(n in 1usize..40) {
            let spec = grid_spec();
            let whole = CampaignMatrix::run(&spec).unwrap();
            let shards = spec.shards(n);
            prop_assert_eq!(shards.len(), n);
            prop_assert_eq!(
                shards.iter().map(CampaignShard::len).sum::<usize>(),
                spec.total_tasks()
            );
            let parts = shards
                .iter()
                .map(|s| s.run().expect("shard runs"))
                .collect::<Vec<_>>();
            let merged = CampaignMatrix::merge(parts).expect("shards merge");
            prop_assert_eq!(merged.to_json(), whole.to_json());
        }

        /// Re-running an unchanged spec against its own saved matrix
        /// recomputes zero cells, regardless of shard-split history.
        #[test]
        fn incremental_rerun_against_saved_matrix_is_free(n in 1usize..8) {
            let spec = grid_spec();
            let parts = spec
                .shards(n)
                .iter()
                .map(|s| s.run().expect("shard runs"))
                .collect::<Vec<_>>();
            let merged = CampaignMatrix::merge(parts).expect("shards merge");
            let (again, report) =
                CampaignMatrix::run_incremental(&spec, Some(&merged)).unwrap();
            prop_assert_eq!(report.evaluated, 0);
            prop_assert_eq!(report.reused, spec.total_tasks());
            prop_assert_eq!(again.to_json(), merged.to_json());
        }
    }

    #[test]
    fn acceptance_incremental_via_json_file_round_trip() {
        let spec = grid_spec();
        let first = CampaignMatrix::run(&spec).unwrap();
        let path =
            std::env::temp_dir().join(format!("specgraph-campaign-{}.json", std::process::id()));
        first.save_json(&path).expect("matrix saves");
        let loaded = CampaignMatrix::load_json(&path).expect("matrix loads");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.to_json(), first.to_json());

        // Unchanged spec against the *file-loaded* matrix: zero evaluations.
        let (_, report) = CampaignMatrix::run_incremental(&spec, Some(&loaded)).unwrap();
        assert_eq!(report.evaluated, 0);

        // One knob value changes: exactly the new config slice is
        // recomputed (its baselines plus its cells), everything else reused.
        let changed = CampaignSpec::builder(UarchConfig::default())
            .attacks(attacks::registry().iter().copied().take(3))
            .defenses(defenses::registry().iter().copied().take(2))
            .axis(Knob::CacheSets, [64usize, 16]) // 32 -> 16
            .build();
        let (matrix, report) = CampaignMatrix::run_incremental(&changed, Some(&loaded)).unwrap();
        let (a, d, _) = matrix.shape();
        assert_eq!(
            report.evaluated,
            a + a * d,
            "only the sets=16 slice is stale"
        );
        assert_eq!(report.reused, changed.total_tasks() - report.evaluated);
        assert_eq!(
            matrix.to_json(),
            CampaignMatrix::run(&changed).unwrap().to_json(),
            "incremental result must equal a fresh run"
        );
    }
}
