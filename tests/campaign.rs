//! Campaign-engine acceptance: one `core::campaign` run must reproduce
//! the Table-III × defense-catalog verdicts of the seed's per-pair
//! `scenario::evaluate` path, cell for cell, and stay deterministic under
//! parallelism.

use specgraph::prelude::*;
use uarch::UarchConfig;

#[test]
fn one_campaign_call_reproduces_the_per_pair_evaluation_path() {
    let base = UarchConfig::default();
    let matrix = CampaignMatrix::run(&CampaignSpec::builder(base.clone()).build()).unwrap();
    let (a, d, c) = matrix.shape();
    assert_eq!(a, attacks::registry().len());
    assert_eq!(d, defenses::registry().len());
    assert_eq!(c, 1);

    // Cell-for-cell identity with the seed's nested per-pair loop.
    let mut cells = matrix.cells().iter();
    for attack in attacks::registry() {
        for defense in defenses::registry() {
            let expected = scenario::evaluate(*attack, defense, &base).unwrap();
            let cell = cells.next().expect("campaign covers the full matrix");
            assert_eq!(
                cell.evaluation,
                expected,
                "campaign disagrees with per-pair evaluate for {} vs {}",
                defense.name,
                attack.info().name
            );
        }
    }
    assert!(cells.next().is_none(), "campaign produced extra cells");
}

#[test]
fn evaluate_all_is_a_thin_campaign_consumer_with_the_seed_shape() {
    let base = UarchConfig::default();
    let (evals, false_sense) = scenario::evaluate_all(&base).unwrap();
    assert_eq!(
        evals.len(),
        attacks::registry().len() * defenses::registry().len()
    );
    // The paper's warning is not hypothetical (KPTI vs Spectre v1, …).
    assert!(false_sense > 0);
    assert_eq!(
        false_sense,
        evals.iter().filter(|e| e.false_sense_of_security()).count()
    );
    // Same order as the seed's attack-major nested loop.
    assert_eq!(evals[0].attack, attacks::names::SPECTRE_V1);
    assert_eq!(evals[0].defense(), defenses::names::LFENCE);
}

#[test]
fn parallel_and_serial_campaigns_agree_exactly() {
    let serial = CampaignSpec {
        threads: 1,
        ..CampaignSpec::default()
    };
    let parallel = CampaignSpec {
        threads: 8,
        ..CampaignSpec::default()
    };
    let a = CampaignMatrix::run(&serial).unwrap();
    let b = CampaignMatrix::run(&parallel).unwrap();
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn known_verdicts_surface_through_matrix_lookups() {
    let matrix = CampaignMatrix::run(&CampaignSpec::default()).unwrap();
    // KPTI blocks Meltdown but is the canonical false sense vs Spectre v1.
    let kpti_meltdown = matrix
        .cell(attacks::names::MELTDOWN, defenses::names::KPTI, 0)
        .unwrap();
    assert_eq!(kpti_meltdown.evaluation.mechanism, Verdict::Blocked);
    let kpti_v1 = matrix
        .cell(attacks::names::SPECTRE_V1, defenses::names::KPTI, 0)
        .unwrap();
    assert!(kpti_v1.false_sense_of_security());
    assert!(matrix
        .false_senses()
        .iter()
        .any(|cell| cell.attack == attacks::names::SPECTRE_V1
            && cell.defense == defenses::names::KPTI));
    // NDA blocks everything (strategy ② at the use chokepoint).
    for a in attacks::registry() {
        let cell = matrix.cell(a.info().name, defenses::names::NDA, 0).unwrap();
        assert_eq!(
            cell.evaluation.mechanism,
            Verdict::Blocked,
            "NDA must block {}",
            a.info().name
        );
    }
    // Baselines: every variant leaks undefended and its graph races.
    for b in matrix.baselines() {
        assert!(b.leaked, "{} must leak on the baseline", b.info.name);
        assert!(b.graph_race, "{} graph must race", b.info.name);
    }
}

#[test]
fn filter_extracts_strategy_slices() {
    let matrix = CampaignMatrix::run(&CampaignSpec::default()).unwrap();
    let send_cells = matrix.filter(|cell| cell.evaluation.strategies() == [Strategy::PreventSend]);
    let send_defenses = defenses::registry()
        .iter()
        .filter(|d| d.strategy == Strategy::PreventSend)
        .count();
    assert_eq!(send_cells.len(), send_defenses * attacks::registry().len());
}

mod defense_stacks {
    use proptest::prelude::*;
    use specgraph::prelude::*;
    use uarch::UarchConfig;

    /// A deterministic permutation of `names` drawn from `seed`.
    fn permuted(names: &[&str], mut seed: u64) -> Vec<Defense> {
        let mut pool: Vec<Defense> = names
            .iter()
            .map(|n| *defenses::resolve(n).expect("registered"))
            .collect();
        let mut out = Vec::with_capacity(pool.len());
        while !pool.is_empty() {
            seed = seed
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let idx = usize::try_from(seed % pool.len() as u64).unwrap();
            out.push(pool.swap_remove(idx));
        }
        out
    }

    fn verdicts_for(members: Vec<Defense>) -> Vec<(&'static str, Verdict, Option<bool>)> {
        let stack = DefenseStack::new(members).expect("catalog members compose");
        let spec = CampaignSpec::builder(UarchConfig::default())
            .attacks(attacks::registry().iter().copied().take(4))
            .defense_stacks([stack])
            .build();
        CampaignMatrix::run(&spec)
            .expect("campaign runs")
            .cells()
            .iter()
            .map(|cell| {
                (
                    cell.attack,
                    cell.evaluation.mechanism,
                    cell.evaluation.strategy_sufficient,
                )
            })
            .collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Deploying the same members in any order yields the same
        /// machine and graph verdicts: stacking is declarative, not
        /// procedural.
        #[test]
        fn stack_order_never_changes_verdicts(seed in 0u64..u64::MAX) {
            let pool = ["kpti", "retpoline", "ibpb", "ssbs", "eager-fpu"];
            let baseline = verdicts_for(permuted(&pool, 0));
            prop_assert_eq!(verdicts_for(permuted(&pool, seed)), baseline);
        }
    }

    #[test]
    fn conflicting_members_are_rejected_not_folded() {
        // Duplicates are the API-level conflict every consumer can hit;
        // opposing overlay writes are covered by the defenses crate's
        // ConflictingKnob tests (they need a non-catalog member).
        assert!(matches!(
            DefenseStack::parse("nda+nda"),
            Err(StackError::Duplicate(_))
        ));
        assert!(matches!(
            DefenseStack::new(Vec::new()),
            Err(StackError::Empty)
        ));
    }

    #[test]
    fn singleton_stacks_reproduce_the_legacy_artifacts_bit_for_bit() {
        // One spec built through the legacy .defenses() path, one through
        // explicit singleton stacks: CSV and JSON must be identical, and
        // the JSON must load back under the v3 header too.
        let defenses_list: Vec<Defense> = defenses::registry().iter().copied().take(4).collect();
        let legacy = CampaignSpec::builder(UarchConfig::default())
            .attacks(attacks::registry().iter().copied().take(3))
            .defenses(defenses_list.clone())
            .build();
        let stacked = CampaignSpec::builder(UarchConfig::default())
            .attacks(attacks::registry().iter().copied().take(3))
            .defense_stacks(defenses_list.into_iter().map(DefenseStack::single))
            .build();
        let a = CampaignMatrix::run(&legacy).unwrap();
        let b = CampaignMatrix::run(&stacked).unwrap();
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.to_json(), b.to_json());

        // v3 → v5 round trip: rewriting the version header yields exactly
        // what a pre-stack build wrote for singleton campaigns, and it
        // loads, re-serializes as v5, and feeds incremental reuse.
        let v3 = a.to_json().replacen("\"version\": 7", "\"version\": 3", 1);
        let loaded = CampaignMatrix::from_json(&v3).expect("v3 loads");
        assert_eq!(loaded.to_json(), a.to_json());
        let (_, report) = CampaignMatrix::run_incremental(&legacy, Some(&loaded)).unwrap();
        assert_eq!(report.evaluated, 0);
    }
}

mod sharding_and_incremental {
    use proptest::prelude::*;
    use specgraph::campaign::{CampaignShard, Knob};
    use specgraph::prelude::*;
    use uarch::UarchConfig;

    /// A 3×2×2 subcube: big enough that every shard split is non-trivial,
    /// small enough for repeated property cases.
    fn grid_spec() -> CampaignSpec {
        CampaignSpec::builder(UarchConfig::default())
            .attacks(attacks::registry().iter().copied().take(3))
            .defenses(defenses::registry().iter().copied().take(2))
            .axis(Knob::CacheSets, [64usize, 32])
            .build()
    }

    #[test]
    fn acceptance_merge_is_bit_identical_for_2_3_7_shards() {
        let spec = CampaignSpec::builder(UarchConfig::default())
            .attacks(attacks::registry().iter().copied().take(5))
            .defenses(defenses::registry().iter().copied().take(4))
            .axis(Knob::RobDepth, [32usize, 64])
            .build();
        let whole = CampaignMatrix::run(&spec).unwrap();
        for n in [2usize, 3, 7] {
            let parts = spec
                .shards(n)
                .iter()
                .map(|s| s.run().expect("shard runs"))
                .collect::<Vec<_>>();
            let merged = CampaignMatrix::merge(parts).expect("shards merge");
            assert_eq!(merged.to_csv(), whole.to_csv(), "CSV differs for n={n}");
            assert_eq!(merged.to_json(), whole.to_json(), "JSON differs for n={n}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// merge(shards(n)) equals one single-shot run cell for cell, for
        /// arbitrary shard counts (including more shards than tasks).
        #[test]
        fn merge_of_any_shard_split_equals_single_shot(n in 1usize..40) {
            let spec = grid_spec();
            let whole = CampaignMatrix::run(&spec).unwrap();
            let shards = spec.shards(n);
            prop_assert_eq!(shards.len(), n);
            prop_assert_eq!(
                shards.iter().map(CampaignShard::len).sum::<usize>(),
                spec.total_tasks()
            );
            let parts = shards
                .iter()
                .map(|s| s.run().expect("shard runs"))
                .collect::<Vec<_>>();
            let merged = CampaignMatrix::merge(parts).expect("shards merge");
            prop_assert_eq!(merged.to_json(), whole.to_json());
        }

        /// Re-running an unchanged spec against its own saved matrix
        /// recomputes zero cells, regardless of shard-split history.
        #[test]
        fn incremental_rerun_against_saved_matrix_is_free(n in 1usize..8) {
            let spec = grid_spec();
            let parts = spec
                .shards(n)
                .iter()
                .map(|s| s.run().expect("shard runs"))
                .collect::<Vec<_>>();
            let merged = CampaignMatrix::merge(parts).expect("shards merge");
            let (again, report) =
                CampaignMatrix::run_incremental(&spec, Some(&merged)).unwrap();
            prop_assert_eq!(report.evaluated, 0);
            prop_assert_eq!(report.reused, spec.total_tasks());
            prop_assert_eq!(again.to_json(), merged.to_json());
        }
    }

    #[test]
    fn knob_grid_campaign_hoists_graph_verdicts_to_attack_stack_pairs() {
        // Graph verdicts are config-invariant: a full run of an A×S×C
        // cube must compute exactly A×S strategy-sufficiency verdicts
        // (one per (attack, stack) pair), not A×S×C — the counter on the
        // report is the proof.
        let spec = CampaignSpec::builder(UarchConfig::default())
            .attacks(attacks::registry().iter().copied().take(4))
            .defenses(defenses::registry().iter().copied().take(3))
            .axis(Knob::RobDepth, [16usize, 48])
            .axis(Knob::CacheWays, [4usize, 8])
            .build();
        let (a, d, c) = (spec.attacks.len(), spec.defenses.len(), spec.configs.len());
        assert_eq!((a, d, c), (4, 3, 4), "grid expands to 4 config slices");

        let (matrix, report) = CampaignMatrix::run_incremental(&spec, None).unwrap();
        assert_eq!(report.evaluated, spec.total_tasks());
        assert_eq!(
            report.graph_verdicts,
            a * d,
            "graph verdicts must be per (attack, stack) pair, not per cell"
        );

        // The hoisted verdict is genuinely shared: every config slice of a
        // pair carries the identical strategy_sufficient answer, and it
        // matches the per-pair evaluation path.
        for attack in &spec.attacks {
            for defense in &spec.defenses {
                let expected =
                    scenario::evaluate_stack(*attack, defense, &spec.configs[0].config).unwrap();
                for config in 0..c {
                    let cell = matrix
                        .cell(attack.info().name, defense.name(), config)
                        .expect("cell exists");
                    assert_eq!(
                        cell.evaluation.strategy_sufficient,
                        expected.strategy_sufficient,
                        "{} vs {} @ slice {config}",
                        defense.name(),
                        attack.info().name
                    );
                }
            }
        }

        // An unchanged incremental rerun reuses everything and computes
        // zero strategy verdicts.
        let (_, report) = CampaignMatrix::run_incremental(&spec, Some(&matrix)).unwrap();
        assert_eq!(report.evaluated, 0);
        assert_eq!(report.graph_verdicts, 0);
    }

    #[test]
    fn acceptance_incremental_via_json_file_round_trip() {
        let spec = grid_spec();
        let first = CampaignMatrix::run(&spec).unwrap();
        let path =
            std::env::temp_dir().join(format!("specgraph-campaign-{}.json", std::process::id()));
        first.save_json(&path).expect("matrix saves");
        let loaded = CampaignMatrix::load_json(&path).expect("matrix loads");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.to_json(), first.to_json());

        // Unchanged spec against the *file-loaded* matrix: zero evaluations.
        let (_, report) = CampaignMatrix::run_incremental(&spec, Some(&loaded)).unwrap();
        assert_eq!(report.evaluated, 0);

        // One knob value changes: exactly the new config slice is
        // recomputed (its baselines plus its cells), everything else reused.
        let changed = CampaignSpec::builder(UarchConfig::default())
            .attacks(attacks::registry().iter().copied().take(3))
            .defenses(defenses::registry().iter().copied().take(2))
            .axis(Knob::CacheSets, [64usize, 16]) // 32 -> 16
            .build();
        let (matrix, report) = CampaignMatrix::run_incremental(&changed, Some(&loaded)).unwrap();
        let (a, d, _) = matrix.shape();
        assert_eq!(
            report.evaluated,
            a + a * d,
            "only the sets=16 slice is stale"
        );
        assert_eq!(report.reused, changed.total_tasks() - report.evaluated);
        assert_eq!(
            matrix.to_json(),
            CampaignMatrix::run(&changed).unwrap().to_json(),
            "incremental result must equal a fresh run"
        );
    }
}
