//! Campaign-engine acceptance: one `core::campaign` run must reproduce
//! the Table-III × defense-catalog verdicts of the seed's per-pair
//! `scenario::evaluate` path, cell for cell, and stay deterministic under
//! parallelism.

use specgraph::prelude::*;
use uarch::UarchConfig;

#[test]
fn one_campaign_call_reproduces_the_per_pair_evaluation_path() {
    let base = UarchConfig::default();
    let matrix = CampaignMatrix::run(&CampaignSpec::with_base(&base)).unwrap();
    let (a, d, c) = matrix.shape();
    assert_eq!(a, attacks::registry().len());
    assert_eq!(d, defenses::registry().len());
    assert_eq!(c, 1);

    // Cell-for-cell identity with the seed's nested per-pair loop.
    let mut cells = matrix.cells().iter();
    for attack in attacks::registry() {
        for defense in defenses::registry() {
            let expected = scenario::evaluate(*attack, defense, &base).unwrap();
            let cell = cells.next().expect("campaign covers the full matrix");
            assert_eq!(
                cell.evaluation,
                expected,
                "campaign disagrees with per-pair evaluate for {} vs {}",
                defense.name,
                attack.info().name
            );
        }
    }
    assert!(cells.next().is_none(), "campaign produced extra cells");
}

#[test]
fn evaluate_all_is_a_thin_campaign_consumer_with_the_seed_shape() {
    let base = UarchConfig::default();
    let (evals, false_sense) = scenario::evaluate_all(&base).unwrap();
    assert_eq!(
        evals.len(),
        attacks::registry().len() * defenses::registry().len()
    );
    // The paper's warning is not hypothetical (KPTI vs Spectre v1, …).
    assert!(false_sense > 0);
    assert_eq!(
        false_sense,
        evals.iter().filter(|e| e.false_sense_of_security()).count()
    );
    // Same order as the seed's attack-major nested loop.
    assert_eq!(evals[0].attack, attacks::names::SPECTRE_V1);
    assert_eq!(evals[0].defense, defenses::names::LFENCE);
}

#[test]
fn parallel_and_serial_campaigns_agree_exactly() {
    let serial = CampaignSpec {
        threads: 1,
        ..CampaignSpec::default()
    };
    let parallel = CampaignSpec {
        threads: 8,
        ..CampaignSpec::default()
    };
    let a = CampaignMatrix::run(&serial).unwrap();
    let b = CampaignMatrix::run(&parallel).unwrap();
    assert_eq!(a.to_csv(), b.to_csv());
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn known_verdicts_surface_through_matrix_lookups() {
    let matrix = CampaignMatrix::run(&CampaignSpec::default()).unwrap();
    // KPTI blocks Meltdown but is the canonical false sense vs Spectre v1.
    let kpti_meltdown = matrix
        .cell(attacks::names::MELTDOWN, defenses::names::KPTI, 0)
        .unwrap();
    assert_eq!(kpti_meltdown.evaluation.mechanism, Verdict::Blocked);
    let kpti_v1 = matrix
        .cell(attacks::names::SPECTRE_V1, defenses::names::KPTI, 0)
        .unwrap();
    assert!(kpti_v1.false_sense_of_security());
    assert!(matrix
        .false_senses()
        .iter()
        .any(|cell| cell.attack == attacks::names::SPECTRE_V1
            && cell.defense == defenses::names::KPTI));
    // NDA blocks everything (strategy ② at the use chokepoint).
    for a in attacks::registry() {
        let cell = matrix.cell(a.info().name, defenses::names::NDA, 0).unwrap();
        assert_eq!(
            cell.evaluation.mechanism,
            Verdict::Blocked,
            "NDA must block {}",
            a.info().name
        );
    }
    // Baselines: every variant leaks undefended and its graph races.
    for b in matrix.baselines() {
        assert!(b.leaked, "{} must leak on the baseline", b.info.name);
        assert!(b.graph_race, "{} graph must race", b.info.name);
    }
}

#[test]
fn filter_extracts_strategy_slices() {
    let matrix = CampaignMatrix::run(&CampaignSpec::default()).unwrap();
    let send_cells = matrix.filter(|cell| cell.evaluation.strategy == Strategy::PreventSend);
    let send_defenses = defenses::registry()
        .iter()
        .filter(|d| d.strategy == Strategy::PreventSend)
        .count();
    assert_eq!(send_cells.len(), send_defenses * attacks::registry().len());
}
