//! Satellite battery for the synthesized-scenario fuzzing loop
//! (`specgraph::discovery::fuzz`): a fixed-seed corpus with every
//! divergence explicitly classified, bit-identity across runs / thread
//! counts / save-resume splits, rediscovery of the known §V-A attacks,
//! and the shrinker's still-leaks + 1-minimality + determinism contract.

use proptest::prelude::*;
use specgraph::discovery::fuzz::{
    self, fuzz, is_one_minimal, minimize, DualOracle, FuzzConfig, FuzzError, Scenario,
};
use std::path::PathBuf;

/// The acceptance run every assertion below shares: default seed, default
/// budget, minimization on. Computed once (it is the expensive part) and
/// reused across the tests in this binary.
fn acceptance_corpus() -> &'static fuzz::Corpus {
    static CORPUS: std::sync::OnceLock<fuzz::Corpus> = std::sync::OnceLock::new();
    CORPUS.get_or_init(|| {
        fuzz(&FuzzConfig::default(), None)
            .expect("generated candidates never fail the oracles")
            .corpus
    })
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("specgraph-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn fixed_seed_corpus_classifies_every_candidate_with_no_unexplained_divergence() {
    let corpus = acceptance_corpus();
    assert_eq!(corpus.seed, 42);
    assert!(
        corpus.classified >= 500,
        "default budget must classify at least 500 scenarios, got {}",
        corpus.classified
    );
    // Every candidate lands in exactly one bucket: agreement counters
    // plus divergence records account for the full budget.
    assert_eq!(
        corpus.agree_leak + corpus.agree_safe + corpus.divergences.len() as u64,
        corpus.classified,
        "every candidate must be classified"
    );
    assert!(corpus.agree_leak > 0, "some candidates must agree-leak");
    assert!(corpus.agree_safe > 0, "some candidates must agree-safe");
    // Divergences are first-class findings, never silently passed: each
    // one carries an explanation, and nothing is unexplained.
    assert!(
        !corpus.divergences.is_empty(),
        "the mutation menu is designed to produce divergences"
    );
    assert!(
        corpus.unexplained().is_empty(),
        "unexplained divergences: {:?}",
        corpus.unexplained()
    );
    let tags: std::collections::HashSet<&str> = corpus
        .divergences
        .iter()
        .map(|d| d.agreement.as_str())
        .collect();
    // Both divergence directions appear: the simulation missing a
    // graph-predicted leak, and the graph blessing a simulated leak.
    assert!(
        tags.iter().any(|t| t.starts_with("missed-leak/")),
        "{tags:?}"
    );
    assert!(
        tags.iter().any(|t| t.starts_with("false-sense/")),
        "{tags:?}"
    );
}

#[test]
fn default_run_discovers_novel_minimal_leakers() {
    let corpus = acceptance_corpus();
    assert!(
        corpus.findings.len() >= 3,
        "default budget must grow the catalog by at least 3 novel shapes, got {}",
        corpus.findings.len()
    );
    // Fingerprints are distinct among themselves and disjoint from every
    // hand-built registry row's graph shape.
    let mut fps: Vec<u64> = corpus
        .findings
        .iter()
        .map(|f| f.minimized_fingerprint)
        .collect();
    fps.sort_unstable();
    fps.dedup();
    assert_eq!(fps.len(), corpus.findings.len(), "duplicate finding shapes");
    for attack in specgraph::attacks::registry() {
        let known = attack.graph().graph().shape_fingerprint();
        assert!(
            !fps.contains(&known),
            "finding collides with catalog row {}",
            attack.info().name
        );
    }
    // Each finding still leaks under both oracles and is 1-minimal.
    let mut oracle = DualOracle::new();
    for f in &corpus.findings {
        let s = f.scenario().expect("stored finding re-assembles");
        let v = oracle.classify(&s).expect("stored finding classifies");
        assert!(
            v.graph_leak && v.sim_leak,
            "finding {} must leak under both oracles",
            f.name()
        );
        assert!(
            is_one_minimal(&mut oracle, &s),
            "finding {} is not 1-minimal",
            f.name()
        );
    }
}

#[test]
fn default_run_rediscovers_the_known_attacks() {
    let corpus = acceptance_corpus();
    let found: Vec<&str> = corpus
        .rediscovered
        .iter()
        .map(|r| r.name.as_str())
        .collect();
    for name in [
        specgraph::attacks::names::SPECTRE_V1,
        specgraph::attacks::names::SPECTRE_V2,
        specgraph::attacks::names::SPECTRE_RSB,
        specgraph::attacks::names::MELTDOWN,
        specgraph::attacks::names::SPECTRE_V3A,
    ] {
        assert!(
            found.contains(&name),
            "default seed+budget must rediscover {name}; found {found:?}"
        );
    }
    assert!(found.len() >= 5);
}

#[test]
fn checked_in_seed_corpus_manifest_is_reproduced() {
    // tests/data/fuzz-seed-corpus.json is the pinned regression artifact:
    // the exact corpus `campaign fuzz --seed 42 --budget 64` writes. Any
    // change to the generator, oracles, fingerprint, or shrinker shows up
    // here as a diff that must be reviewed (and the file regenerated
    // deliberately), never as silent drift.
    let fresh = fuzz(
        &FuzzConfig {
            seed: 42,
            budget: 64,
            minimize: true,
            threads: 0,
            checkpoint_every: 0,
        },
        None,
    )
    .unwrap()
    .corpus
    .to_json();
    assert_eq!(
        fresh,
        include_str!("data/fuzz-seed-corpus.json"),
        "seed corpus drifted from the checked-in manifest; if intentional, \
         regenerate tests/data/fuzz-seed-corpus.json with \
         `campaign fuzz --seed 42 --budget 64 --corpus DIR`"
    );
}

#[test]
fn fuzz_loop_is_bit_identical_across_runs_and_thread_counts() {
    let cfg = FuzzConfig {
        seed: 1234,
        budget: 96,
        minimize: true,
        threads: 1,
        checkpoint_every: 0,
    };
    let single = fuzz(&cfg, None).unwrap().corpus.to_json();
    let again = fuzz(&cfg, None).unwrap().corpus.to_json();
    assert_eq!(single, again, "same config must reproduce bit-identically");
    for threads in [2, 3, 8] {
        let parallel = fuzz(
            &FuzzConfig {
                threads,
                ..cfg.clone()
            },
            None,
        )
        .unwrap()
        .corpus
        .to_json();
        assert_eq!(single, parallel, "--threads {threads} changed the corpus");
    }
}

#[test]
fn save_resume_split_matches_the_uninterrupted_run() {
    let dir = tmp_dir("fuzz-split");
    let full = fuzz(
        &FuzzConfig {
            seed: 9,
            budget: 80,
            minimize: true,
            threads: 0,
            checkpoint_every: 0,
        },
        None,
    )
    .unwrap()
    .corpus;
    // Same work split into 30 + 50, checkpointed on disk in between.
    let half = FuzzConfig {
        seed: 9,
        budget: 30,
        minimize: true,
        threads: 0,
        checkpoint_every: 0,
    };
    fuzz(&half, Some(&dir)).unwrap();
    let resumed = fuzz(&FuzzConfig { budget: 80, ..half }, Some(&dir)).unwrap();
    assert_eq!(resumed.newly_classified, 50);
    assert_eq!(resumed.corpus.to_json(), full.to_json());
    // Resuming at the same budget re-classifies nothing.
    let noop = fuzz(&FuzzConfig { budget: 80, ..half }, Some(&dir)).unwrap();
    assert_eq!(noop.newly_classified, 0);
    assert_eq!(noop.corpus.to_json(), full.to_json());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mismatched_resume_parameters_are_refused() {
    let dir = tmp_dir("fuzz-mismatch");
    let cfg = FuzzConfig {
        seed: 5,
        budget: 8,
        minimize: true,
        threads: 1,
        checkpoint_every: 0,
    };
    fuzz(&cfg, Some(&dir)).unwrap();
    let seed_err = fuzz(
        &FuzzConfig {
            seed: 6,
            ..cfg.clone()
        },
        Some(&dir),
    )
    .unwrap_err();
    assert!(matches!(seed_err, FuzzError::Resume(_)), "{seed_err}");
    let min_err = fuzz(
        &FuzzConfig {
            minimize: false,
            ..cfg.clone()
        },
        Some(&dir),
    )
    .unwrap_err();
    assert!(matches!(min_err, FuzzError::Resume(_)), "{min_err}");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The shrinker's contract on arbitrary both-oracle leakers: the
    /// minimized scenario still leaks under both oracles, is 1-minimal,
    /// and minimization is deterministic for a given input.
    #[test]
    fn shrinker_preserves_the_leak_and_reaches_one_minimality(seed in any::<u64>()) {
        let mut oracle = DualOracle::new();
        // Find the first both-oracle leaker in this seed's stream.
        let mut candidate = None;
        for i in 0..32u64 {
            let s = Scenario::generate(seed, i);
            let v = oracle.classify(&s).expect("generated candidates classify");
            if v.graph_leak && v.sim_leak {
                candidate = Some(s);
                break;
            }
        }
        let s = candidate.expect("32 candidates always contain a leaker");
        let (min_a, stats) = minimize(&mut oracle, &s);
        let v = oracle.classify(&min_a).expect("minimized scenario classifies");
        prop_assert!(v.graph_leak && v.sim_leak, "minimization broke the leak");
        prop_assert!(is_one_minimal(&mut oracle, &min_a), "not 1-minimal");
        prop_assert!(min_a.program.len() + stats.removed == s.program.len());
        // Deterministic: a second minimization of the same input agrees.
        let (min_b, _) = minimize(&mut oracle, &s);
        prop_assert_eq!(min_a, min_b);
    }
}
