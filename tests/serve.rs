//! Integration tests for the serving layer (`specgraph::serve`): the
//! memoized verdict store with single-flight simulate-on-miss, and the
//! resumable work-stealing scheduler.

use specgraph::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::Barrier;

fn small_spec() -> CampaignSpec {
    CampaignSpec::builder(UarchConfig::default())
        .attacks(attacks::registry().iter().copied().take(4))
        .defenses(defenses::registry().iter().copied().take(3))
        .build()
}

fn grid_spec() -> CampaignSpec {
    CampaignSpec::builder(UarchConfig::default())
        .attacks(attacks::registry().iter().copied().take(3))
        .defenses(defenses::registry().iter().copied().take(2))
        .axis(campaign::Knob::RobDepth, [16usize, 64])
        .build()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("specgraph-serve-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("tempdir");
    dir
}

// ---------------------------------------------------------------------------
// Verdict store: ingest + hit path
// ---------------------------------------------------------------------------

#[test]
fn ingested_rows_answer_hits_without_simulation() {
    let spec = small_spec();
    let matrix = CampaignMatrix::run(&spec).unwrap();
    let store = VerdictStore::new();
    let ingested = store.ingest_matrix(&matrix);
    assert_eq!(ingested, matrix.baselines().len() + matrix.cells().len());
    assert_eq!(store.len(), ingested);

    let cfg = UarchConfig::default();
    // Every matrix cell must be answerable as a pure hit, with the
    // verdict the matrix recorded and the baseline's cycles attached.
    for cell in matrix.cells() {
        let answer = store
            .lookup(cell.attack, Some(&cell.evaluation.stack), &cfg)
            .expect("ingested cell is a hit");
        assert_eq!(answer.verdict, cell.evaluation.mechanism);
        assert_eq!(answer.graph, cell.evaluation.strategy_sufficient);
        assert_eq!(answer.source, serve::AnswerSource::Hit);
        assert!(answer.cycles.is_some(), "baseline row was ingested too");
    }
    for b in matrix.baselines() {
        let answer = store
            .lookup(b.info.name, None, &cfg)
            .expect("ingested baseline is a hit");
        let expect = if b.leaked {
            Verdict::Leaked
        } else {
            Verdict::Blocked
        };
        assert_eq!(answer.verdict, expect);
        assert_eq!(answer.graph, Some(b.graph_race));
        assert_eq!(answer.cycles, Some(b.cycles));
    }
    assert_eq!(store.simulations(), 0, "hit path never simulates");
    assert!(store.hits() >= ingested as u64);
}

#[test]
fn keyed_get_is_the_raw_hit_path() {
    let spec = small_spec();
    let matrix = CampaignMatrix::run(&spec).unwrap();
    let store = VerdictStore::new();
    store.ingest_matrix(&matrix);
    let cfg = UarchConfig::default();
    let cell = &matrix.cells()[0];
    let key = VerdictStore::cell_key(cell.attack, &cell.evaluation.stack, &cfg);
    match store.get(key) {
        Some(StoredVerdict::Cell { mechanism, .. }) => {
            assert_eq!(mechanism, cell.evaluation.mechanism);
        }
        other => panic!("expected a cell row, got {other:?}"),
    }
    assert_eq!(store.get(key ^ 1), None, "foreign keys miss");
}

// ---------------------------------------------------------------------------
// Simulate-on-miss + single-flight
// ---------------------------------------------------------------------------

#[test]
fn miss_simulates_and_matches_the_campaign_engine() {
    let spec = small_spec();
    let matrix = CampaignMatrix::run(&spec).unwrap();
    let store = VerdictStore::new();
    // Nothing ingested: every query is a miss that simulates, and the
    // simulated verdicts must agree with the campaign rows cell by cell.
    let cfg = UarchConfig::default();
    for cell in matrix.cells().iter().take(6) {
        let attack = *spec
            .attacks
            .iter()
            .find(|a| a.info().name == cell.attack)
            .unwrap();
        let answer = store
            .query(attack, Some(&cell.evaluation.stack), &cfg)
            .unwrap();
        assert_eq!(answer.verdict, cell.evaluation.mechanism);
        assert_eq!(answer.graph, cell.evaluation.strategy_sufficient);
        assert_eq!(answer.source, serve::AnswerSource::Simulated);
    }
    assert_eq!(store.simulations(), 6);
    // The same queries again are hits: memoized, no new simulations.
    for cell in matrix.cells().iter().take(6) {
        let attack = *spec
            .attacks
            .iter()
            .find(|a| a.info().name == cell.attack)
            .unwrap();
        let answer = store
            .query(attack, Some(&cell.evaluation.stack), &cfg)
            .unwrap();
        assert_eq!(answer.source, serve::AnswerSource::Hit);
    }
    assert_eq!(store.simulations(), 6);
}

#[test]
fn concurrent_misses_for_one_cell_run_exactly_one_simulation() {
    // The single-flight property test: N threads released by a barrier
    // all query the same missing cell; the counting hook must show
    // exactly one simulation, and every caller the identical verdict.
    const THREADS: usize = 8;
    let store = VerdictStore::new();
    let attack = attacks::registry()[0];
    let stack = DefenseStack::parse("kpti+retpoline").unwrap();
    let cfg = UarchConfig::default();
    let barrier = Barrier::new(THREADS);

    let answers: Vec<Answer> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (store, stack, cfg, barrier) = (&store, &stack, &cfg, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    store.query(attack, Some(stack), cfg).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        store.simulations(),
        1,
        "N concurrent misses for one cell must coalesce onto one flight"
    );
    let leader_count = answers
        .iter()
        .filter(|a| a.source == serve::AnswerSource::Simulated)
        .count();
    assert_eq!(leader_count, 1, "exactly one caller runs the simulation");
    for pair in answers.windows(2) {
        assert_eq!(pair[0].verdict, pair[1].verdict);
        assert_eq!(pair[0].graph, pair[1].graph);
    }
    // Afterwards the cell is memoized: one more query, still 1 simulation.
    let again = store.query(attack, Some(&stack), &cfg).unwrap();
    assert_eq!(again.source, serve::AnswerSource::Hit);
    assert_eq!(again.verdict, answers[0].verdict);
    assert_eq!(store.simulations(), 1);
}

#[test]
fn distinct_cells_do_not_coalesce() {
    // Single-flight keys on the cell fingerprint: concurrent misses for
    // *different* cells each run their own simulation.
    let store = VerdictStore::new();
    let cfg = UarchConfig::default();
    let stacks = ["kpti", "retpoline", "nda"];
    std::thread::scope(|scope| {
        for name in stacks {
            let (store, cfg) = (&store, &cfg);
            scope.spawn(move || {
                let stack = DefenseStack::parse(name).unwrap();
                store
                    .query(attacks::registry()[0], Some(&stack), cfg)
                    .unwrap();
            });
        }
    });
    assert_eq!(store.simulations(), 3);
}

// ---------------------------------------------------------------------------
// Work-stealing scheduler
// ---------------------------------------------------------------------------

#[test]
fn scheduled_run_is_bit_identical_to_single_shot() {
    let spec = grid_spec();
    let single = CampaignMatrix::run(&spec).unwrap();
    for workers in [1, 3] {
        let (scheduled, report) = Scheduler::new(&spec)
            .workers(workers)
            .chunk_tasks(5)
            .run()
            .unwrap();
        assert_eq!(scheduled.to_json(), single.to_json());
        assert_eq!(scheduled.to_csv(), single.to_csv());
        assert_eq!(report.chunks, spec.total_tasks().div_ceil(5));
        assert_eq!(report.executed, report.chunks, "no checkpoints: all run");
        assert_eq!(report.resumed, 0);
    }
}

#[test]
fn scheduler_streams_chunks_into_the_store() {
    let spec = small_spec();
    let store = VerdictStore::new();
    let (matrix, _) = Scheduler::new(&spec)
        .workers(2)
        .chunk_tasks(4)
        .run_into(&store)
        .unwrap();
    assert_eq!(store.len(), matrix.baselines().len() + matrix.cells().len());
    // Every cell the scheduler computed is now a hit.
    let cfg = UarchConfig::default();
    let cell = &matrix.cells()[0];
    let answer = store
        .lookup(cell.attack, Some(&cell.evaluation.stack), &cfg)
        .unwrap();
    assert_eq!(answer.verdict, cell.evaluation.mechanism);
    assert_eq!(store.simulations(), 0);
}

#[test]
fn killed_run_resumes_from_checkpoints_without_resimulating() {
    let spec = grid_spec();
    let dir = tempdir("resume");
    let single = CampaignMatrix::run(&spec).unwrap();

    // First run: complete, checkpointing every chunk.
    let (first, report) = Scheduler::new(&spec)
        .chunk_tasks(3)
        .checkpoint(&dir)
        .run()
        .unwrap();
    assert_eq!(first.to_json(), single.to_json());
    let chunks = report.chunks;
    assert!(chunks >= 4, "grid must split into several chunks");
    assert_eq!(report.executed, chunks);

    // Simulate a kill: delete one finished chunk and truncate another
    // mid-write (the half-written file a SIGKILL leaves behind).
    let victim = dir.join("chunk-00001.json");
    fs::remove_file(&victim).unwrap();
    let half = dir.join("chunk-00002.json");
    let text = fs::read_to_string(&half).unwrap();
    fs::write(&half, &text[..text.len() / 2]).unwrap();

    // Resume: only the two damaged chunks re-run, rest load from disk.
    let (second, report) = Scheduler::new(&spec)
        .chunk_tasks(3)
        .checkpoint(&dir)
        .run()
        .unwrap();
    assert_eq!(report.chunks, chunks);
    assert_eq!(report.resumed, chunks - 2);
    assert_eq!(report.executed, 2);
    assert_eq!(second.to_json(), single.to_json());
    assert_eq!(second.to_csv(), single.to_csv());
    // The half-written checkpoint is surfaced, not silently re-run; the
    // cleanly deleted one is an ordinary miss, so it is not "repaired".
    let [repair] = report.repaired.as_slice() else {
        panic!(
            "expected exactly one repaired checkpoint, got {:?}",
            report.repaired
        );
    };
    assert_eq!(repair.index, 2);
    assert_eq!(repair.path, half);
    assert!(
        repair.reason.contains("truncated"),
        "reason should surface the typed truncation: {}",
        repair.reason
    );

    // A third run resumes everything: zero cells re-simulated.
    let (third, report) = Scheduler::new(&spec)
        .chunk_tasks(3)
        .checkpoint(&dir)
        .run()
        .unwrap();
    assert_eq!(report.executed, 0);
    assert_eq!(report.resumed, chunks);
    assert!(report.repaired.is_empty());
    assert_eq!(third.to_json(), single.to_json());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_adopts_chunk_geometry_from_the_checkpoint_directory() {
    // A changed chunk-size flag must not re-tile a half-finished run:
    // the on-disk chunk count wins.
    let spec = small_spec();
    let dir = tempdir("geometry");
    let (_, report) = Scheduler::new(&spec)
        .chunk_tasks(4)
        .checkpoint(&dir)
        .run()
        .unwrap();
    let chunks = report.chunks;
    let (_, report) = Scheduler::new(&spec)
        .chunk_tasks(9) // different flag, same directory
        .checkpoint(&dir)
        .run()
        .unwrap();
    assert_eq!(report.chunks, chunks);
    assert_eq!(report.resumed, chunks);
    assert_eq!(report.executed, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn foreign_checkpoints_are_a_typed_mismatch() {
    // A checkpoint directory written by a different campaign must not be
    // silently re-run or merged — it is a hard, typed error.
    let dir = tempdir("foreign");
    Scheduler::new(&small_spec())
        .chunk_tasks(4)
        .checkpoint(&dir)
        .run()
        .unwrap();
    let err = Scheduler::new(&grid_spec())
        .chunk_tasks(4)
        .checkpoint(&dir)
        .run()
        .unwrap_err();
    assert!(
        matches!(err, ServeError::CheckpointMismatch { .. }),
        "expected CheckpointMismatch, got {err}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn progress_observer_sees_every_chunk_once() {
    use std::sync::Mutex;
    let spec = small_spec();
    let seen = Mutex::new(Vec::new());
    let (_, report) = Scheduler::new(&spec)
        .workers(2)
        .chunk_tasks(4)
        .run_observed(
            None,
            Some(&|e: ChunkEvent| {
                seen.lock().unwrap().push(e.index);
            }),
        )
        .unwrap();
    let mut seen = seen.into_inner().unwrap();
    seen.sort_unstable();
    assert_eq!(seen, (0..report.chunks).collect::<Vec<_>>());
}

// ---------------------------------------------------------------------------
// Throughput floor
// ---------------------------------------------------------------------------

/// The interactive-rate contract: the keyed hit path sustains at least a
/// million lookups per second. Measured only on optimized builds (CI runs
/// this with `--release`); the criterion `verdict_store` bench reports
/// the real (much higher) rate.
#[test]
#[cfg_attr(debug_assertions, ignore = "throughput floor holds for release builds")]
fn hit_path_sustains_a_million_lookups_per_second() {
    let spec = small_spec();
    let matrix = CampaignMatrix::run(&spec).unwrap();
    let store = VerdictStore::new();
    store.ingest_matrix(&matrix);
    let cfg = &spec.configs[0].config;
    let keys: Vec<u64> = spec
        .attacks
        .iter()
        .flat_map(|a| {
            let name = a.info().name;
            spec.defenses
                .iter()
                .map(move |s| VerdictStore::cell_key(name, s, cfg))
        })
        .collect();
    assert!(keys.iter().all(|k| store.get(*k).is_some()));

    const LOOKUPS: usize = 4_000_000;
    let start = std::time::Instant::now();
    let mut found = 0usize;
    for i in 0..LOOKUPS {
        if store.get(keys[i % keys.len()]).is_some() {
            found += 1;
        }
    }
    let elapsed = start.elapsed();
    assert_eq!(found, LOOKUPS);
    #[allow(clippy::cast_precision_loss)] // counts << 2^52
    let rate = LOOKUPS as f64 / elapsed.as_secs_f64();
    assert!(
        rate >= 1_000_000.0,
        "hit path must sustain >=1M lookups/sec, measured {rate:.0}/sec"
    );
}
