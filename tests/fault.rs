//! Integration tests for the fault-injection harness (`specgraph::fault`)
//! and the graceful-degradation paths it exercises: crash-consistent
//! artifacts under every write-prefix fault, panic quarantine with
//! incremental healing, cycle-budget timeouts, and the typed recovery of
//! half-written corpora and checkpoints.

use specgraph::prelude::*;
use std::fs;
use std::path::PathBuf;
use std::sync::Mutex;

/// The fault-injection write layer is process-global (one armed plan at a
/// time), so every test in this binary that writes artifacts — armed or
/// not — takes this lock first. Without it a parallel test's innocent
/// save could absorb a sweep's injected fault.
static IO_LOCK: Mutex<()> = Mutex::new(());

fn io_lock() -> std::sync::MutexGuard<'static, ()> {
    IO_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("specgraph-fault-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("tempdir");
    dir
}

fn wipe(dir: &PathBuf) -> Result<(), String> {
    let _ = fs::remove_dir_all(dir);
    fs::create_dir_all(dir).map_err(|e| e.to_string())
}

/// 2 attacks × 1 defense × 2 ROB depths = 8 tasks; the first attack is
/// the given one (a `PanickingAttack` double in the quarantine tests).
fn spec_with(first: &'static dyn Attack) -> CampaignSpec {
    CampaignSpec::builder(UarchConfig::default())
        .attacks([
            first,
            attacks::find(attacks::names::RETBLEED).expect("registry attack"),
        ])
        .defenses([*defenses::find("NDA").expect("catalog defense")])
        .axis(campaign::Knob::RobDepth, [16usize, 64])
        .threads(1)
        .build()
}

fn meltdown() -> &'static dyn Attack {
    attacks::find(attacks::names::MELTDOWN).expect("registry attack")
}

// ---------------------------------------------------------------------------
// Quarantine: panic isolation, typed rows, incremental healing
// ---------------------------------------------------------------------------

#[test]
fn injected_panic_quarantines_instead_of_aborting_and_heals_incrementally() {
    let _io = io_lock();
    let oracle = CampaignMatrix::run(&spec_with(meltdown())).unwrap();

    let double = PanickingAttack::wrap(meltdown());
    let mut spec = spec_with(double as &'static dyn Attack);
    spec.resilience.retries = 1;
    let matrix = CampaignMatrix::run(&spec).expect("campaign completes despite the panicking cell");

    // Every Meltdown row (baseline + NDA cell, two configs each) is a
    // typed quarantined row; the sibling attack is untouched.
    assert_eq!(matrix.quarantined(), 4);
    assert_eq!(matrix.timed_out(), 0);
    assert_eq!(
        matrix.baselines().len() + matrix.cells().len(),
        oracle.baselines().len() + oracle.cells().len(),
        "degradation must not drop rows"
    );
    for cell in matrix.cells() {
        match &cell.outcome {
            CellOutcome::Quarantined { reason } => {
                assert!(reason.contains("injected fault"), "{reason}");
                // Machine truth is gone, but the static graph verdicts
                // survive degradation.
                assert_eq!(cell.evaluation.mechanism, Verdict::GraphOnly);
            }
            CellOutcome::Ok => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    // The degraded schema round-trips: save, load, same degraded counts.
    let dir = tempdir("quarantine");
    let path = dir.join("matrix.json");
    matrix.save_json(&path).unwrap();
    let loaded = CampaignMatrix::load_json(&path).unwrap();
    assert_eq!(loaded.quarantined(), 4);
    assert_eq!(loaded.to_json(), matrix.to_json());

    // Remove the fault and re-run incrementally: exactly the quarantined
    // rows re-simulate, and the healed matrix equals the fault-free one.
    double.disarm();
    let (healed, report) =
        CampaignMatrix::run_incremental_observed(&spec, Some(&matrix), None).unwrap();
    assert_eq!(report.evaluated, 4, "only quarantined rows re-run");
    assert_eq!(report.reused, 4);
    assert_eq!(healed.quarantined(), 0);
    assert_eq!(healed.to_json(), oracle.to_json());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn scheduler_completes_with_quarantined_cells_and_store_skips_them() {
    let _io = io_lock();
    let double = PanickingAttack::wrap(meltdown());
    let mut spec = spec_with(double as &'static dyn Attack);
    spec.resilience.retries = 0;

    let (matrix, report) = Scheduler::new(&spec)
        .workers(2)
        .chunk_tasks(2)
        .run()
        .unwrap();
    assert_eq!(report.chunks, 4);
    assert_eq!(matrix.quarantined(), 4);

    // Memoized verdicts must stay machine truth: quarantined rows are
    // not ingested, so a later fault-free run can heal the store.
    let store = VerdictStore::new();
    let total = matrix.baselines().len() + matrix.cells().len();
    assert_eq!(store.ingest_matrix(&matrix), total - 4);
    assert_eq!(store.len(), total - 4);
}

#[test]
fn exhausted_cycle_budget_degrades_to_timed_out_rows() {
    let _io = io_lock();
    let config = UarchConfig {
        max_cycles: 3, // no attack finishes in three cycles
        ..UarchConfig::default()
    };
    let mut spec = CampaignSpec::builder(config)
        .attacks([meltdown()])
        .defenses([*defenses::find("NDA").expect("catalog defense")])
        .threads(1)
        .build();

    // Without degradation the budget is a hard error...
    let err = CampaignMatrix::run(&spec).unwrap_err();
    assert!(err.to_string().contains("cycle"), "{err}");

    // ...with it, every row becomes a typed timed-out row that keeps its
    // graph verdicts and round-trips through the schema.
    spec.resilience.degrade_timeouts = true;
    let matrix = CampaignMatrix::run(&spec).unwrap();
    assert_eq!(matrix.timed_out(), 2);
    assert_eq!(matrix.quarantined(), 0);
    for cell in matrix.cells() {
        assert_eq!(cell.outcome, CellOutcome::TimedOut { limit: 3 });
    }
    let reloaded = CampaignMatrix::from_json(&matrix.to_json()).unwrap();
    assert_eq!(reloaded.timed_out(), 2);
    assert_eq!(reloaded.to_json(), matrix.to_json());
}

#[test]
fn fault_free_matrices_still_load_as_schema_v5() {
    let _io = io_lock();
    let matrix = CampaignMatrix::run(&spec_with(meltdown())).unwrap();
    let json = matrix.to_json();
    // A fault-free v7 document differs from v5 only in the header.
    let v5 = json.replacen("\"version\": 7", "\"version\": 5", 1);
    assert_ne!(v5, json, "version literal must be present");
    let loaded = CampaignMatrix::from_json(&v5).unwrap();
    assert_eq!(loaded.to_json(), json);
}

// ---------------------------------------------------------------------------
// Crash sweeps: every write prefix leaves a resumable state
// ---------------------------------------------------------------------------

#[test]
fn scheduler_run_is_crash_consistent_at_every_write_prefix() {
    let _io = io_lock();
    let spec = spec_with(meltdown());
    let dir = tempdir("sweep-serve");
    let ckpt = dir.join("ckpt");
    let out = dir.join("matrix.json");

    let run = || {
        Scheduler::new(&spec)
            .workers(1)
            .chunk_tasks(2)
            .checkpoint(&ckpt)
            .run()
            .map_err(|e| e.to_string())
    };
    let report = fault::crash_sweep(
        0xC0FFEE,
        || wipe(&dir),
        || {
            let (matrix, _) = run()?;
            fault::write_atomic(&out, &matrix.to_json()).map_err(|e| e.to_string())?;
            fs::read(&out).map_err(|e| e.to_string())
        },
        |k| {
            // Zero re-simulation of completed cells: every checkpoint
            // that still loads must be resumed, not re-run.
            let intact = (0..4)
                .filter(|i| {
                    CampaignPart::load_checkpoint_json(ckpt.join(format!("chunk-{i:05}.json")))
                        .is_ok()
                })
                .count();
            let (matrix, rep) = run()?;
            if rep.resumed < intact {
                return Err(format!(
                    "write #{k}: resumed {} of {intact} intact checkpoint(s)",
                    rep.resumed
                ));
            }
            fault::write_atomic(&out, &matrix.to_json()).map_err(|e| e.to_string())?;
            fs::read(&out).map_err(|e| e.to_string())
        },
    )
    .expect("sweep passes");
    // 4 chunk checkpoints + 1 final matrix.
    assert_eq!(report.writes, 5);
    assert_eq!(report.fired, 5);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fuzz_corpus_run_is_crash_consistent_at_every_checkpoint_cadence() {
    let _io = io_lock();
    let cfg = FuzzConfig {
        seed: 11,
        budget: 24,
        checkpoint_every: 8,
        threads: 1,
        ..FuzzConfig::default()
    };
    let dir = tempdir("sweep-fuzz");

    let report = fault::crash_sweep(
        0xFA17,
        || wipe(&dir),
        || {
            fuzz::fuzz(&cfg, Some(&dir)).map_err(|e| e.to_string())?;
            fs::read(Corpus::path_in(&dir)).map_err(|e| e.to_string())
        },
        |k| {
            let on_disk = match Corpus::load(&dir) {
                Ok(Some(corpus)) => corpus.classified,
                Ok(None) => 0,
                Err(e) if e.is_recoverable() => 0,
                Err(e) => return Err(format!("write #{k}: unrecoverable corpus: {e}")),
            };
            let resumed = fuzz::fuzz(&cfg, Some(&dir)).map_err(|e| e.to_string())?;
            // Zero re-classification of candidates the surviving corpus
            // already covers.
            if resumed.newly_classified != cfg.budget - on_disk {
                return Err(format!(
                    "write #{k}: re-classified {} candidate(s), expected {}",
                    resumed.newly_classified,
                    cfg.budget - on_disk
                ));
            }
            fs::read(Corpus::path_in(&dir)).map_err(|e| e.to_string())
        },
    )
    .expect("sweep passes");
    // Checkpoints after candidates 8 and 16, plus the final save at 24.
    assert_eq!(report.writes, 3);
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Typed recovery of half-written artifacts
// ---------------------------------------------------------------------------

#[test]
fn half_written_corpus_is_reported_recoverable_not_a_parse_error() {
    let _io = io_lock();
    let cfg = FuzzConfig {
        seed: 5,
        budget: 16,
        threads: 1,
        ..FuzzConfig::default()
    };
    let dir = tempdir("torn-corpus");
    let oracle = fuzz::fuzz(&cfg, Some(&dir)).unwrap();
    assert!(oracle.recovered.is_none());
    let bytes = fs::read(Corpus::path_in(&dir)).unwrap();

    // Tear the corpus mid-write, as a crash would.
    fs::write(Corpus::path_in(&dir), &bytes[..bytes.len() / 2]).unwrap();
    let err = Corpus::load(&dir).unwrap_err();
    assert!(
        err.is_recoverable(),
        "truncation is typed, not generic: {err}"
    );

    // The loop re-classifies from budget zero and says so.
    let healed = fuzz::fuzz(&cfg, Some(&dir)).unwrap();
    let why = healed.recovered.expect("recovery is reported");
    assert!(why.contains("truncated"), "{why}");
    assert_eq!(healed.newly_classified, cfg.budget);
    assert_eq!(fs::read(Corpus::path_in(&dir)).unwrap(), bytes);
    let _ = fs::remove_dir_all(&dir);
}
